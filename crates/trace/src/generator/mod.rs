//! Synthetic workload generators.
//!
//! Each workload is a [`Profile`] — operation mix, file-size distribution,
//! chunk sizes, access skew, and data-lifetime model — driven by a common
//! engine that maintains a live-file population, schedules deaths from the
//! [`LifetimeModel`], and emits a time-ordered [`Trace`]. Generation is
//! deterministic given the seed.

mod bsd;
mod database;
mod mail_spool;
mod office;
mod software_dev;

use crate::io::OpStreamWriter;
use crate::lifetime::LifetimeModel;
use crate::record::{FileId, FileOp, Trace};
use ssmc_sim::rng::Zipf;
use ssmc_sim::{EventQueue, SimDuration, SimRng, SimTime};
use std::io::{self, Seek, Write};
// lint: allow(D2): the engine's file table is keyed-access only; see
// the directive on the `files` field for the determinism argument.
use std::collections::HashMap;

/// The four calibrated workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// General time-sharing file activity (Ousterhout/Baker-like).
    Bsd,
    /// Personal-information-manager record keeping (Wizard/Newton class).
    Office,
    /// Edit/compile cycles with short-lived object files.
    SoftwareDev,
    /// Random in-place record updates in a few large files.
    Database,
    /// Metadata-heavy mail delivery and mailbox scanning: create / stat /
    /// rename / unlink churn over many small messages.
    MailSpool,
}

impl core::fmt::Display for Workload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl Workload {
    /// Every generator profile, in a stable order.
    pub const ALL: [Workload; 5] = [
        Workload::Bsd,
        Workload::Office,
        Workload::SoftwareDev,
        Workload::Database,
        Workload::MailSpool,
    ];

    /// The kebab-case profile name (what `Display` prints).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Bsd => "bsd",
            Workload::Office => "office",
            Workload::SoftwareDev => "software-dev",
            Workload::Database => "database",
            Workload::MailSpool => "mail-spool",
        }
    }

    /// Parses a profile name as printed by `Display`.
    pub fn parse(s: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.name() == s)
    }
}

/// Relative operation weights for a profile.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpWeights {
    pub create: f64,
    pub overwrite: f64,
    pub read: f64,
    pub delete: f64,
    pub truncate: f64,
    pub sync: f64,
    /// Attribute-only touches. Zero in the original four profiles: the
    /// weighted draw consumes one uniform either way, so traces generated
    /// before these ops existed are unchanged byte for byte.
    pub stat: f64,
    /// Renames (e.g. mail-spool delivery: tmp file → final name).
    pub rename: f64,
}

/// A workload's statistical shape.
#[derive(Debug, Clone)]
pub(crate) struct Profile {
    pub name: &'static str,
    pub weights: OpWeights,
    /// Log-normal parameters of new-file sizes (of the underlying normal).
    pub size_mu: f64,
    pub size_sigma: f64,
    pub size_min: u64,
    pub size_max: u64,
    /// Overwrite / record chunk bounds.
    pub chunk_min: u64,
    pub chunk_max: u64,
    /// Probability a read covers the whole file (sequential whole-file
    /// access dominated the BSD/Sprite traces).
    pub whole_file_read_prob: f64,
    /// Zipf skew over recency rank for choosing the target file.
    pub recency_skew: f64,
    /// Probability an overwrite-class operation appends instead.
    pub append_prob: f64,
    /// Data-lifetime model for new files.
    pub lifetime: LifetimeModel,
    /// Files pre-populated before the trace starts.
    pub initial_files: usize,
}

/// Generator configuration: which workload, how much of it, and overrides.
///
/// # Examples
///
/// ```
/// use ssmc_trace::{GeneratorConfig, Workload};
///
/// let trace = GeneratorConfig::new(Workload::Office)
///     .with_ops(1_000)
///     .with_seed(42)
///     .generate();
/// assert_eq!(trace.len(), 1_000);
/// // Same seed, same trace.
/// let again = GeneratorConfig::new(Workload::Office)
///     .with_ops(1_000)
///     .with_seed(42)
///     .generate();
/// assert_eq!(trace.records, again.records);
/// ```
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Which workload profile to use.
    pub workload: Workload,
    /// Number of records to emit.
    pub ops: usize,
    /// Mean operation interarrival time (exponential).
    pub mean_interarrival: SimDuration,
    /// RNG seed; same seed, same trace.
    pub seed: u64,
    /// Cap on total live bytes; the generator deletes the oldest files to
    /// stay under it, so traces fit the small devices under test.
    pub max_live_bytes: u64,
    /// Override the profile's lifetime model (used by the F2 sensitivity
    /// sweep).
    pub lifetime_override: Option<LifetimeModel>,
}

impl GeneratorConfig {
    /// A reasonable default for `workload`: 50 000 ops at 50 ms mean
    /// interarrival (≈42 simulated minutes).
    pub fn new(workload: Workload) -> Self {
        GeneratorConfig {
            workload,
            ops: 50_000,
            mean_interarrival: SimDuration::from_millis(50),
            seed: 0x55AC,
            max_live_bytes: 8 << 20,
            lifetime_override: None,
        }
    }

    /// Sets the record count.
    pub fn with_ops(mut self, ops: usize) -> Self {
        self.ops = ops;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the live-byte cap.
    pub fn with_max_live_bytes(mut self, bytes: u64) -> Self {
        self.max_live_bytes = bytes;
        self
    }

    /// Overrides the lifetime model.
    pub fn with_lifetime(mut self, l: LifetimeModel) -> Self {
        self.lifetime_override = Some(l);
        self
    }

    fn profile(&self) -> Profile {
        let mut profile = match self.workload {
            Workload::Bsd => bsd::profile(),
            Workload::Office => office::profile(),
            Workload::SoftwareDev => software_dev::profile(),
            Workload::Database => database::profile(),
            Workload::MailSpool => mail_spool::profile(),
        };
        if let Some(l) = self.lifetime_override {
            profile.lifetime = l;
        }
        profile
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let profile = self.profile();
        let sink = TraceSink {
            trace: Trace::new(profile.name),
        };
        let mut trace = Engine::new(self, profile, sink).run().trace;
        // An engine step can emit several records (create = Create +
        // Write, plus cap-eviction deletes), so the last step may
        // overshoot; trim to the requested count.
        trace.records.truncate(self.ops);
        trace
    }

    /// Generates straight into a compiled op-stream writer, never
    /// materialising a `Vec<TraceRecord>`: each operation is encoded and
    /// written the moment it is drawn, so million-op traces cost the
    /// writer's buffer plus the engine's live-file table. Emits exactly
    /// the records [`Self::generate`] would — the same seed produces a
    /// byte-identical stream to compiling the in-memory trace.
    ///
    /// Returns the number of records written (`self.ops`, unless the
    /// writer failed).
    ///
    /// # Errors
    ///
    /// The first write error from the underlying sink, if any.
    pub fn generate_into<W: Write + Seek>(&self, w: &mut OpStreamWriter<W>) -> io::Result<u64> {
        let profile = self.profile();
        let sink = Engine::new(self, profile, WriterSink::new(w, self.ops)).run();
        if let Some(e) = sink.error {
            return Err(e);
        }
        Ok(sink.emitted.min(sink.cap) as u64)
    }
}

/// Where the engine sends each drawn operation. The engine only ever
/// appends and asks how many records exist so far; abstracting that pair
/// lets the same stepping logic fill an in-memory [`Trace`] or stream
/// records straight to disk.
trait OpSink {
    fn emit(&mut self, at: SimTime, op: FileOp);
    /// Records emitted so far — **including** any past the requested cap,
    /// so the run loop's termination test sees the same counts on both
    /// sink paths.
    fn emitted(&self) -> usize;
}

/// Collects records into an in-memory trace (the [`GeneratorConfig::generate`] path).
struct TraceSink {
    trace: Trace,
}

impl OpSink for TraceSink {
    fn emit(&mut self, at: SimTime, op: FileOp) {
        self.trace.push(at, op);
    }

    fn emitted(&self) -> usize {
        self.trace.len()
    }
}

/// Forwards records to an [`OpStreamWriter`]. Counts every emit but only
/// forwards the first `cap`: the in-memory path truncates its overshoot
/// after the run, and this sink must drop exactly the same tail to keep
/// the two paths byte-identical. The first write error is latched and
/// ends forwarding; the engine still runs to completion (its RNG draws
/// are already spent) and the error surfaces from `generate_into`.
struct WriterSink<'w, W: Write + Seek> {
    w: &'w mut OpStreamWriter<W>,
    cap: usize,
    emitted: usize,
    error: Option<io::Error>,
}

impl<'w, W: Write + Seek> WriterSink<'w, W> {
    fn new(w: &'w mut OpStreamWriter<W>, cap: usize) -> Self {
        WriterSink {
            w,
            cap,
            emitted: 0,
            error: None,
        }
    }
}

impl<W: Write + Seek> OpSink for WriterSink<'_, W> {
    fn emit(&mut self, at: SimTime, op: FileOp) {
        if self.emitted < self.cap && self.error.is_none() {
            if let Err(e) = self.w.push(at, &op) {
                self.error = Some(e);
            }
        }
        self.emitted += 1;
    }

    fn emitted(&self) -> usize {
        self.emitted
    }
}

struct LiveFile {
    size: u64,
}

struct Engine<'a, S: OpSink> {
    cfg: &'a GeneratorConfig,
    profile: Profile,
    rng: SimRng,
    now: SimTime,
    sink: S,
    next_id: FileId,
    /// Most-recent-first list of live file ids (recency rank order).
    recency: Vec<FileId>,
    // lint: allow(D2): keyed get/insert/remove only, never iterated;
    // victim selection walks the `recency` vector and the death queue,
    // both of which are insertion-ordered.
    files: HashMap<FileId, LiveFile>,
    live_bytes: u64,
    deaths: EventQueue<FileId>,
}

impl<'a, S: OpSink> Engine<'a, S> {
    fn new(cfg: &'a GeneratorConfig, profile: Profile, sink: S) -> Self {
        Engine {
            rng: SimRng::seed_from_u64(cfg.seed),
            now: SimTime::ZERO,
            sink,
            next_id: 1,
            recency: Vec::new(),
            // lint: allow(D2): construction of the keyed-only table
            // justified on the field declaration above.
            files: HashMap::new(),
            live_bytes: 0,
            deaths: EventQueue::new(),
            cfg,
            profile,
        }
    }

    fn sample_size(&mut self) -> u64 {
        let raw = self
            .rng
            .lognormal(self.profile.size_mu, self.profile.size_sigma);
        (raw as u64).clamp(self.profile.size_min, self.profile.size_max)
    }

    fn sample_chunk(&mut self) -> u64 {
        if self.profile.chunk_min >= self.profile.chunk_max {
            return self.profile.chunk_min;
        }
        self.rng
            .range(self.profile.chunk_min, self.profile.chunk_max)
    }

    /// Picks a live file by Zipf over recency rank (rank 0 = newest).
    fn pick_file(&mut self) -> Option<FileId> {
        if self.recency.is_empty() {
            return None;
        }
        let z = Zipf::new(self.recency.len(), self.profile.recency_skew);
        let rank = z.sample(&mut self.rng);
        Some(self.recency[rank])
    }

    fn touch(&mut self, file: FileId) {
        if let Some(pos) = self.recency.iter().position(|&f| f == file) {
            let f = self.recency.remove(pos);
            self.recency.insert(0, f);
        }
    }

    fn delete(&mut self, file: FileId) {
        if let Some(lf) = self.files.remove(&file) {
            self.live_bytes -= lf.size;
            self.recency.retain(|&f| f != file);
            self.sink.emit(self.now, FileOp::Delete { file });
        }
    }

    fn create_file(&mut self, size: u64) -> FileId {
        // Stay under the live-byte cap by retiring the oldest files.
        while self.live_bytes + size > self.cfg.max_live_bytes && !self.recency.is_empty() {
            let victim = *self.recency.last().expect("non-empty");
            self.delete(victim);
        }
        let file = self.next_id;
        self.next_id += 1;
        self.sink.emit(self.now, FileOp::Create { file });
        self.sink.emit(
            self.now,
            FileOp::Write {
                file,
                offset: 0,
                len: size,
            },
        );
        self.files.insert(file, LiveFile { size });
        self.recency.insert(0, file);
        self.live_bytes += size;
        let death = self.now + self.profile.lifetime.sample(&mut self.rng);
        self.deaths.schedule(death, file);
        file
    }

    fn op_overwrite(&mut self) {
        let Some(file) = self.pick_file() else {
            self.create_default();
            return;
        };
        let append = self.rng.chance(self.profile.append_prob);
        let size = self.files[&file].size;
        let chunk = self.sample_chunk();
        if append {
            self.sink.emit(
                self.now,
                FileOp::Write {
                    file,
                    offset: size,
                    len: chunk,
                },
            );
            self.files.get_mut(&file).expect("live").size += chunk;
            self.live_bytes += chunk;
        } else {
            let offset = if size > chunk {
                // Align overwrites to 512-byte records, like real updates.
                (self.rng.below(size - chunk) / 512) * 512
            } else {
                0
            };
            let len = chunk.min(size.max(1));
            self.sink
                .emit(self.now, FileOp::Write { file, offset, len });
        }
        self.touch(file);
    }

    fn op_read(&mut self) {
        let Some(file) = self.pick_file() else {
            self.create_default();
            return;
        };
        let size = self.files[&file].size.max(1);
        let (offset, len) = if self.rng.chance(self.profile.whole_file_read_prob) {
            (0, size)
        } else {
            let chunk = self.sample_chunk().min(size);
            let offset = if size > chunk {
                self.rng.below(size - chunk)
            } else {
                0
            };
            (offset, chunk.max(1))
        };
        self.sink
            .emit(self.now, FileOp::Read { file, offset, len });
        self.touch(file);
    }

    fn op_truncate(&mut self) {
        let Some(file) = self.pick_file() else {
            return;
        };
        let size = self.files[&file].size;
        let new_len = size / 2;
        self.sink
            .emit(self.now, FileOp::Truncate { file, len: new_len });
        self.live_bytes -= size - new_len;
        self.files.get_mut(&file).expect("live").size = new_len;
    }

    fn op_stat(&mut self) {
        let Some(file) = self.pick_file() else {
            self.create_default();
            return;
        };
        self.sink.emit(self.now, FileOp::Stat { file });
        self.touch(file);
    }

    fn op_rename(&mut self) {
        let Some(file) = self.pick_file() else {
            self.create_default();
            return;
        };
        let to = self.next_id;
        self.next_id += 1;
        self.sink.emit(self.now, FileOp::Rename { file, to });
        // The data lives on under the new id; the old id retires. The
        // stale death event becomes a no-op (delete ignores dead ids), so
        // the file gets a fresh lifetime draw under its new name.
        let lf = self.files.remove(&file).expect("live");
        self.files.insert(to, lf);
        if let Some(pos) = self.recency.iter().position(|&f| f == file) {
            self.recency[pos] = to;
        }
        self.touch(to);
        let death = self.now + self.profile.lifetime.sample(&mut self.rng);
        self.deaths.schedule(death, to);
    }

    fn create_default(&mut self) {
        let size = self.sample_size();
        self.create_file(size);
    }

    fn run(mut self) -> S {
        // Pre-populate the working set.
        for _ in 0..self.profile.initial_files {
            self.create_default();
        }
        let weights = self.profile.weights;
        // Sync stays the LAST entry: `SimRng::weighted` falls back to the
        // final index when float drift leaves the draw past every bucket,
        // and that terminal case must keep resolving to Sync (as it did
        // with the original six-entry table) or pre-stat/rename traces
        // would not reproduce byte for byte. The zero-weight stat/rename
        // entries in the legacy profiles can never win a bucket, and
        // subtracting 0.0 leaves the draw untouched, so mid-table they
        // are inert.
        let table = [
            weights.create,
            weights.overwrite,
            weights.read,
            weights.delete,
            weights.truncate,
            weights.stat,
            weights.rename,
            weights.sync,
        ];
        while self.sink.emitted() < self.cfg.ops {
            let dt = SimDuration::from_secs_f64(
                self.rng
                    .exponential(self.cfg.mean_interarrival.as_secs_f64()),
            );
            self.now += dt;
            // Fire scheduled deaths that have come due.
            while let Some((_, file)) = self.deaths.pop_until(self.now) {
                self.delete(file);
            }
            match self.rng.weighted(&table) {
                0 => self.create_default(),
                1 => self.op_overwrite(),
                2 => self.op_read(),
                3 => {
                    if let Some(f) = self.pick_file() {
                        self.delete(f);
                    }
                }
                4 => self.op_truncate(),
                5 => self.op_stat(),
                6 => self.op_rename(),
                _ => self.sink.emit(self.now, FileOp::Sync),
            }
        }
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(w: Workload) -> Trace {
        GeneratorConfig::new(w).with_ops(5_000).generate()
    }

    #[test]
    fn all_workloads_generate_requested_ops() {
        for w in [
            Workload::Bsd,
            Workload::Office,
            Workload::SoftwareDev,
            Workload::Database,
        ] {
            let t = gen(w);
            assert_eq!(t.len(), 5_000, "{w}");
            assert_eq!(t.stats().total_ops(), 5_000, "{w}");
        }
    }

    #[test]
    fn generate_into_matches_generate_byte_for_byte() {
        // The streaming path must be indistinguishable from generating in
        // memory and compiling: same records in, same container bytes out,
        // including the truncate-at-cap tail behaviour.
        for w in [
            Workload::Bsd,
            Workload::Office,
            Workload::SoftwareDev,
            Workload::Database,
            Workload::MailSpool,
        ] {
            let cfg = GeneratorConfig::new(w).with_ops(3_000);
            let trace = cfg.generate();
            let via_memory = {
                let stream = crate::stream::OpStream::compile(&trace);
                let mut buf = io::Cursor::new(Vec::new());
                let mut writer = OpStreamWriter::new(&mut buf, stream.name()).expect("header");
                let mut cursor = stream.cursor();
                while let Some(r) = cursor.next_record() {
                    writer.push(r.at, &r.op).expect("push");
                }
                writer.finish().expect("finish");
                buf.into_inner()
            };
            let via_stream = {
                let mut buf = io::Cursor::new(Vec::new());
                let mut writer = OpStreamWriter::new(&mut buf, &trace.name).expect("header");
                let n = cfg.generate_into(&mut writer).expect("generate_into");
                assert_eq!(n, 3_000, "{w}");
                writer.finish().expect("finish");
                buf.into_inner()
            };
            assert_eq!(via_memory, via_stream, "{w} container bytes diverge");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GeneratorConfig::new(Workload::Bsd)
            .with_ops(2_000)
            .generate();
        let b = GeneratorConfig::new(Workload::Bsd)
            .with_ops(2_000)
            .generate();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratorConfig::new(Workload::Bsd)
            .with_ops(2_000)
            .with_seed(1)
            .generate();
        let b = GeneratorConfig::new(Workload::Bsd)
            .with_ops(2_000)
            .with_seed(2)
            .generate();
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn records_are_time_ordered() {
        let t = gen(Workload::SoftwareDev);
        assert!(t.records.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn operations_reference_live_files() {
        check_live_file_model(&gen(Workload::Bsd));
    }

    #[test]
    fn mail_spool_is_metadata_heavy_and_consistent() {
        let t = gen(Workload::MailSpool);
        check_live_file_model(&t);
        let s = t.stats();
        assert!(s.stats > 0, "mail-spool must stat");
        assert!(s.renames > 0, "mail-spool must rename");
        let namespace = s.creates + s.deletes + s.stats + s.renames;
        let data = s.writes + s.reads;
        assert!(
            namespace > data,
            "namespace ops ({namespace}) should dominate data ops ({data})"
        );
    }

    fn check_live_file_model(t: &Trace) {
        // Replay the trace against a simple model: every non-create op on a
        // file must land between its Create and its Delete (or Rename, which
        // retires the old id and brings the new one to life).
        let mut live = std::collections::HashSet::new();
        for r in &t.records {
            match &r.op {
                FileOp::Create { file } => {
                    assert!(live.insert(*file), "create of live file {file}");
                }
                FileOp::Delete { file } => {
                    assert!(live.remove(file), "delete of dead file {file}");
                }
                FileOp::Write { file, .. }
                | FileOp::Read { file, .. }
                | FileOp::Truncate { file, .. }
                | FileOp::Stat { file } => {
                    assert!(live.contains(file), "op on dead file {file}");
                }
                FileOp::Rename { file, to } => {
                    assert!(live.remove(file), "rename of dead file {file}");
                    assert!(live.insert(*to), "rename onto live file {to}");
                }
                FileOp::Sync => {}
            }
        }
    }

    #[test]
    fn live_bytes_stay_under_cap() {
        let cap = 1 << 20;
        let t = GeneratorConfig::new(Workload::Bsd)
            .with_ops(20_000)
            .with_max_live_bytes(cap)
            .generate();
        let mut sizes: HashMap<FileId, u64> = HashMap::new();
        let mut live = 0u64;
        let mut peak = 0u64;
        for r in &t.records {
            match &r.op {
                FileOp::Create { file } => {
                    sizes.insert(*file, 0);
                }
                FileOp::Write { file, offset, len } => {
                    if let Some(s) = sizes.get_mut(file) {
                        let end = offset + len;
                        if end > *s {
                            live += end - *s;
                            *s = end;
                        }
                    }
                }
                FileOp::Truncate { file, len } => {
                    if let Some(s) = sizes.get_mut(file) {
                        live -= s.saturating_sub(*len);
                        *s = (*len).min(*s);
                    }
                }
                FileOp::Delete { file } => {
                    if let Some(s) = sizes.remove(file) {
                        live -= s;
                    }
                }
                _ => {}
            }
            peak = peak.max(live);
        }
        // Appends can momentarily exceed the cap (only creates enforce it),
        // but not by much.
        assert!(peak < cap * 2, "peak {peak} vs cap {cap}");
    }

    #[test]
    fn bsd_write_data_mostly_dies_young() {
        // The calibration target behind F2: a large share of written bytes
        // belongs to files deleted within the trace.
        let t = GeneratorConfig::new(Workload::Bsd)
            .with_ops(30_000)
            .generate();
        let mut written: HashMap<FileId, u64> = HashMap::new();
        let mut dead_bytes = 0u64;
        let mut total_bytes = 0u64;
        for r in &t.records {
            match &r.op {
                FileOp::Write { file, len, .. } => {
                    *written.entry(*file).or_default() += len;
                    total_bytes += len;
                }
                FileOp::Delete { file } => {
                    dead_bytes += written.get(file).copied().unwrap_or(0);
                }
                _ => {}
            }
        }
        let frac = dead_bytes as f64 / total_bytes.max(1) as f64;
        assert!(frac > 0.35, "dead-byte fraction {frac}");
    }

    #[test]
    fn database_workload_overwrites_in_place() {
        let t = gen(Workload::Database);
        let s = t.stats();
        // Few files, many writes.
        assert!(s.unique_files < 50, "{} files", s.unique_files);
        assert!(s.writes > s.creates * 10);
    }

    #[test]
    fn office_files_are_small() {
        let t = gen(Workload::Office);
        let s = t.stats();
        let mean_write = s.bytes_written as f64 / s.writes.max(1) as f64;
        assert!(mean_write < 16_384.0, "mean write {mean_write}");
    }

    #[test]
    fn software_dev_creates_heavily() {
        let t = gen(Workload::SoftwareDev);
        let s = t.stats();
        assert!(
            s.creates * 3 > s.reads,
            "creates {} reads {}",
            s.creates,
            s.reads
        );
        assert!(s.deletes > 0);
    }
}
