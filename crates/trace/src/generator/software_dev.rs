//! Software-development profile: edit/compile cycles. Sources are read,
//! object files are created in bursts and die at the next rebuild, and an
//! executable is rewritten occasionally — the short-lived-data extreme
//! that makes DRAM write buffering shine.

use super::{OpWeights, Profile};
use crate::lifetime::LifetimeModel;
use ssmc_sim::SimDuration;

pub(crate) fn profile() -> Profile {
    Profile {
        name: "software-dev",
        weights: OpWeights {
            create: 0.33,
            overwrite: 0.10,
            read: 0.45,
            delete: 0.08,
            truncate: 0.01,
            sync: 0.003,
            stat: 0.0,
            rename: 0.0,
        },
        // Object files: 4–128 KB.
        size_mu: 9.6,
        size_sigma: 1.1,
        size_min: 2048,
        size_max: 512 * 1024,
        chunk_min: 1024,
        chunk_max: 16 * 1024,
        whole_file_read_prob: 0.9,
        recency_skew: 1.0,
        append_prob: 0.5,
        lifetime: LifetimeModel {
            // Almost everything a compiler writes is rewritten next build.
            short_fraction: 0.9,
            short_mean: SimDuration::from_secs(45),
            long_mean: SimDuration::from_secs(8 * 3600),
        },
        initial_files: 30,
    }
}
