//! Database profile: a handful of large, long-lived files receiving random
//! in-place record updates. There is almost no short-lived data, so write
//! buffering absorbs little — the stress case for flash wear (F4) and the
//! counterpoint in the DRAM:flash sizing sweep (F7).

use super::{OpWeights, Profile};
use crate::lifetime::LifetimeModel;
use ssmc_sim::SimDuration;

pub(crate) fn profile() -> Profile {
    Profile {
        name: "database",
        weights: OpWeights {
            create: 0.004,
            overwrite: 0.70,
            read: 0.28,
            delete: 0.001,
            truncate: 0.0,
            sync: 0.002,
            stat: 0.0,
            rename: 0.0,
        },
        // Tables: 0.5–2 MB.
        size_mu: 13.7,
        size_sigma: 0.4,
        size_min: 256 * 1024,
        size_max: 2 << 20,
        chunk_min: 512,
        chunk_max: 4096,
        whole_file_read_prob: 0.05,
        recency_skew: 0.6,
        append_prob: 0.05,
        lifetime: LifetimeModel {
            short_fraction: 0.0,
            short_mean: SimDuration::from_secs(60),
            long_mean: SimDuration::from_secs(30 * 24 * 3600),
        },
        initial_files: 4,
    }
}
