//! Data-lifetime model.
//!
//! The single most load-bearing empirical fact in the paper is that new
//! file data dies young: "a large percentage of write operations are to
//! short-lived files or to file blocks that are soon overwritten" [3, 8],
//! which is why a small DRAM write buffer absorbs 40–50 % of write traffic
//! [1]. This module parameterises that fact as a bimodal lifetime
//! distribution: a *short-lived* mode (deleted/overwritten within tens of
//! seconds) and a *long-lived* mode (survives to stable storage), with the
//! short fraction and both means sweepable so experiment F2 can show the
//! claim's sensitivity to the underlying locality.

use ssmc_sim::report::{field, FromReport, ReportError, ToReport, Value};
use ssmc_sim::{SimDuration, SimRng};

/// Bimodal file/data lifetime distribution.
#[derive(Debug, Clone, Copy)]
pub struct LifetimeModel {
    /// Fraction of new data that is short-lived (Baker et al. report
    /// 65–80 % of new bytes dying within ~30 s on Sprite).
    pub short_fraction: f64,
    /// Mean lifetime of short-lived data.
    pub short_mean: SimDuration,
    /// Mean lifetime of long-lived data.
    pub long_mean: SimDuration,
}

impl Default for LifetimeModel {
    fn default() -> Self {
        LifetimeModel {
            short_fraction: 0.7,
            short_mean: SimDuration::from_secs(30),
            long_mean: SimDuration::from_secs(4 * 3600),
        }
    }
}

impl ToReport for LifetimeModel {
    fn to_report(&self) -> Value {
        Value::object(vec![
            ("short_fraction", self.short_fraction.to_report()),
            ("short_mean", self.short_mean.to_report()),
            ("long_mean", self.long_mean.to_report()),
        ])
    }
}

impl FromReport for LifetimeModel {
    fn from_report(v: &Value) -> Result<Self, ReportError> {
        Ok(LifetimeModel {
            short_fraction: field(v, "short_fraction")?,
            short_mean: field(v, "short_mean")?,
            long_mean: field(v, "long_mean")?,
        })
    }
}

impl LifetimeModel {
    /// Samples a lifetime: exponential within the chosen mode.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let mean = if rng.chance(self.short_fraction) {
            self.short_mean
        } else {
            self.long_mean
        };
        SimDuration::from_secs_f64(rng.exponential(mean.as_secs_f64()))
    }

    /// Returns a copy with a different short-lived fraction (clamped to
    /// `[0, 1]`).
    pub fn with_short_fraction(mut self, f: f64) -> Self {
        self.short_fraction = f.clamp(0.0, 1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_sprite_findings() {
        let m = LifetimeModel::default();
        assert!((0.65..=0.8).contains(&m.short_fraction));
        assert_eq!(m.short_mean, SimDuration::from_secs(30));
    }

    #[test]
    fn sampled_mean_is_mixture_of_modes() {
        let m = LifetimeModel {
            short_fraction: 0.5,
            short_mean: SimDuration::from_secs(10),
            long_mean: SimDuration::from_secs(1000),
        };
        let mut rng = SimRng::seed_from_u64(1);
        let n = 20_000;
        let mean_s: f64 = (0..n)
            .map(|_| m.sample(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        // Expected: 0.5*10 + 0.5*1000 = 505.
        assert!((mean_s - 505.0).abs() < 30.0, "mean was {mean_s}");
    }

    #[test]
    fn all_short_means_short_samples() {
        let m = LifetimeModel::default().with_short_fraction(1.0);
        let mut rng = SimRng::seed_from_u64(2);
        let mean_s: f64 = (0..5_000)
            .map(|_| m.sample(&mut rng).as_secs_f64())
            .sum::<f64>()
            / 5_000.0;
        assert!((mean_s - 30.0).abs() < 3.0, "mean was {mean_s}");
    }

    #[test]
    fn with_short_fraction_clamps() {
        assert_eq!(
            LifetimeModel::default()
                .with_short_fraction(2.0)
                .short_fraction,
            1.0
        );
        assert_eq!(
            LifetimeModel::default()
                .with_short_fraction(-1.0)
                .short_fraction,
            0.0
        );
    }
}
