//! Temporary perf probe: database workload scaling (delete before commit).

use ssmc_core::{run_trace, MachineConfig, MobileComputer};
use ssmc_trace::{GeneratorConfig, Workload};
use std::time::Instant;

fn machine() -> MobileComputer {
    let mut cfg = MachineConfig::with_sizes("throughput", 8 << 20, 24 << 20);
    cfg.write_buffer_bytes = Some(1 << 20);
    MobileComputer::new(cfg)
}

#[test]
#[ignore]
fn database_scaling() {
    for ops in [19_000usize, 20_000, 21_000, 22_000] {
        let trace = GeneratorConfig::new(Workload::Database)
            .with_ops(ops)
            .with_max_live_bytes(4 << 20)
            .generate();
        let mut m = machine();
        let start = Instant::now();
        run_trace(&mut m, &trace);
        let dt = start.elapsed().as_secs_f64();
        let s = m.fs().storage().metrics().clone();
        println!(
            "database {ops} ops: {:.2}s ({:.0} ops/sec) gc_runs={} gc_pages={} user_pages={} wear={}",
            dt,
            trace.records.len() as f64 / dt,
            s.gc_runs,
            s.gc_flash_pages,
            s.user_flash_pages,
            s.wear_migrations,
        );
        if dt > 120.0 {
            println!("bailing: already pathological");
            break;
        }
    }
}
