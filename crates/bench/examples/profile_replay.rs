//! Ad-hoc replay profiler: replays the throughput-bench BSD trace and
//! reports cumulative host time per trace-operation kind.

use ssmc_core::{MachineConfig, MobileComputer};
use ssmc_trace::{FileOp, GeneratorConfig, TraceTarget, Workload};
use std::time::Instant;

fn main() {
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(25_000)
        .with_max_live_bytes(4 << 20)
        .generate();
    let mut cfg = MachineConfig::with_sizes("throughput", 8 << 20, 24 << 20);
    cfg.write_buffer_bytes = Some(1 << 20);
    let mut m = MobileComputer::new(cfg);

    let mut time = [0f64; 6];
    let mut count = [0u64; 6];
    let names = ["create", "write", "read", "truncate", "delete", "sync"];
    let start = Instant::now();
    for r in &trace.records {
        let k = match r.op {
            FileOp::Create { .. } => 0,
            FileOp::Write { .. } => 1,
            FileOp::Read { .. } => 2,
            FileOp::Truncate { .. } => 3,
            FileOp::Delete { .. } => 4,
            FileOp::Sync => 5,
        };
        let t = Instant::now();
        m.apply(&r.op).expect("replay");
        time[k] += t.elapsed().as_secs_f64();
        count[k] += 1;
    }
    let total = start.elapsed().as_secs_f64();
    println!("total: {:.3}s  {:.0} ops/sec", total, 25_000.0 / total);
    // How much of each op is the per-op maintenance sweep?
    let t = Instant::now();
    for _ in 0..100_000 {
        m.maintain();
    }
    println!(
        "maintain   100000 ops  {:>9.1} ns/op (steady-state)",
        t.elapsed().as_secs_f64() * 1e9 / 100_000.0
    );
    for i in 0..6 {
        if count[i] == 0 {
            continue;
        }
        println!(
            "{:<10} {:>7} ops  {:>9.1} ns/op  {:>6.1}% of total",
            names[i],
            count[i],
            time[i] * 1e9 / count[i] as f64,
            100.0 * time[i] / total
        );
    }
}
