//! Ad-hoc replay profiler, built on the observability span layer.
//!
//! Replays the throughput-bench BSD trace with an enabled [`Recorder`]
//! and reports, from the journal aggregates, where simulated time and
//! energy go — per op kind and per layer — plus host-side throughput for
//! both the traced and the no-op-recorder configurations.

use ssmc_bench::obs_trace::{throughput_machine, traced_replay};
use ssmc_core::run_trace;
use ssmc_sim::obs::{EVENT_KINDS, LAYERS};
use ssmc_sim::SimDuration;
use ssmc_trace::{
    coalesce_key, BatchTarget, GeneratorConfig, OpKind, TraceTarget, Workload, MAX_BATCH,
};
use std::time::Instant;

const OPS: u64 = 25_000;

fn main() {
    // Traced run: one pass, journal carries the whole breakdown.
    let start = Instant::now();
    let artifact = traced_replay(Workload::Bsd, OPS);
    let traced_secs = start.elapsed().as_secs_f64();

    // Untraced run on a fresh machine: what the hot path costs with the
    // no-op recorder (the configuration the throughput bench measures).
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(OPS as usize)
        .with_max_live_bytes(4 << 20)
        .generate();
    let mut m = throughput_machine();
    let start = Instant::now();
    run_trace(&mut m, &trace);
    let plain_secs = start.elapsed().as_secs_f64();

    // Sampler-on run: same machine and trace, with the timeline flight
    // recorder writing to a temp `.tl` at the default interval. The gap
    // against the no-op run above is the sampler's whole host cost.
    let tl_path = std::env::temp_dir().join("ssmc_profile_replay.tl");
    let mut m = throughput_machine();
    m.enable_timeline_file(&tl_path, ssmc_bench::obs_trace::default_sample_interval())
        .expect("enable timeline");
    let start = Instant::now();
    run_trace(&mut m, &trace);
    let sampled_secs = start.elapsed().as_secs_f64();
    let summary = m
        .finish_timeline()
        .expect("finish timeline")
        .expect("timeline stayed healthy");
    let _ = std::fs::remove_file(&tl_path);

    println!(
        "host: traced {:.3}s ({:.0} ops/sec), no-op recorder {:.3}s ({:.0} ops/sec)",
        traced_secs,
        OPS as f64 / traced_secs,
        plain_secs,
        OPS as f64 / plain_secs,
    );
    println!(
        "host: sampler on {:.3}s ({:.0} ops/sec; {} rows x {} channels) — {:+.1}% vs sampler off",
        sampled_secs,
        OPS as f64 / sampled_secs,
        summary.rows,
        summary.channels,
        100.0 * (sampled_secs - plain_secs) / plain_secs,
    );
    println!();

    let journal = &artifact.journal;
    let machine_ns: u128 = journal
        .aggregates
        .iter()
        .filter(|r| r.kind.layer() == ssmc_sim::obs::Layer::Machine)
        .map(|r| r.agg.latency.sum())
        .sum();

    println!("simulated time and energy by span kind:");
    println!(
        "{:<20} {:>8} {:>12} {:>12} {:>10} {:>8}",
        "kind", "count", "mean ns", "p99 ns", "energy J", "% sim"
    );
    for kind in EVENT_KINDS {
        let Some(row) = journal.aggregate(kind) else {
            continue;
        };
        let h = &row.agg.latency;
        let share = if machine_ns > 0 {
            100.0 * h.sum() as f64 / machine_ns as f64
        } else {
            0.0
        };
        println!(
            "{:<20} {:>8} {:>12.1} {:>12} {:>10.4} {:>7.1}%",
            kind.name(),
            row.agg.count,
            h.mean(),
            h.quantile(0.99),
            row.agg.energy.as_joules(),
            share,
        );
    }
    println!();

    println!("per layer:");
    for layer in LAYERS {
        let (count, latency_ns, energy, pages, bytes) = journal.layer_totals(layer);
        if count == 0 {
            continue;
        }
        println!(
            "{:<10} {:>8} spans  {:>10.1} ms sim  {:>10.4} J  {:>8} pages  {:>12} bytes",
            layer.name(),
            count,
            latency_ns as f64 / 1e6,
            energy.as_joules(),
            pages,
            bytes,
        );
    }

    // Host-time breakdown per op kind, unbatched vs batched. Both passes
    // put an `Instant` pair around each submission, so the per-op timer
    // overhead lands once per op on the unbatched column but is amortised
    // over the whole batch on the batched one — the same asymmetry the
    // real drivers have, since batching exists to amortise per-submission
    // host cost.
    let kind_idx = |k: OpKind| OpKind::ALL.iter().position(|&x| x == k).expect("known kind");

    // Unbatched: the classic per-record replay loop, timed per apply.
    let mut m = throughput_machine();
    let clock = m.clock().clone();
    let mut counts = [0u64; OpKind::ALL.len()];
    let mut unbatched_ns = [0u64; OpKind::ALL.len()];
    for rec in &trace.records {
        clock.advance_to(rec.at);
        let i = kind_idx(rec.op.kind());
        counts[i] += 1;
        let t = Instant::now();
        let _ = m.apply(&rec.op);
        unbatched_ns[i] += t.elapsed().as_nanos() as u64;
    }

    // Batched: the streaming driver's coalescing rule (via the public
    // `coalesce_key`), timed per `apply_batch` submission.
    let mut m = throughput_machine();
    let mut batched_ns = [0u64; OpKind::ALL.len()];
    let mut coalesced = [0u64; OpKind::ALL.len()];
    let mut lats = [SimDuration::ZERO; MAX_BATCH];
    let records = &trace.records;
    let mut i = 0;
    while i < records.len() {
        let key = coalesce_key(&records[i].op);
        let mut j = i + 1;
        if key.is_some() {
            while j < records.len() && j - i < MAX_BATCH && coalesce_key(&records[j].op) == key {
                j += 1;
            }
        }
        let recs = &records[i..j];
        let k = kind_idx(recs[0].op.kind());
        let t = Instant::now();
        m.apply_batch(recs, &mut lats[..recs.len()]);
        batched_ns[k] += t.elapsed().as_nanos() as u64;
        if recs.len() > 1 {
            coalesced[k] += recs.len() as u64;
        }
        i = j;
    }

    println!();
    println!("host time per op kind, unbatched vs batched:");
    println!(
        "{:<10} {:>8} {:>16} {:>16} {:>9} {:>11}",
        "kind", "count", "unbatched ns/op", "batched ns/op", "speedup", "coalesced"
    );
    let mut tot = (0u64, 0u64, 0u64, 0u64);
    for kind in OpKind::ALL {
        let k = kind_idx(kind);
        if counts[k] == 0 {
            continue;
        }
        println!(
            "{:<10} {:>8} {:>16.1} {:>16.1} {:>8.2}x {:>10.1}%",
            kind.to_string(),
            counts[k],
            unbatched_ns[k] as f64 / counts[k] as f64,
            batched_ns[k] as f64 / counts[k] as f64,
            unbatched_ns[k] as f64 / batched_ns[k].max(1) as f64,
            100.0 * coalesced[k] as f64 / counts[k] as f64,
        );
        tot.0 += counts[k];
        tot.1 += unbatched_ns[k];
        tot.2 += batched_ns[k];
        tot.3 += coalesced[k];
    }
    println!(
        "{:<10} {:>8} {:>16.1} {:>16.1} {:>8.2}x {:>10.1}%",
        "total",
        tot.0,
        tot.1 as f64 / tot.0.max(1) as f64,
        tot.2 as f64 / tot.0.max(1) as f64,
        tot.1 as f64 / tot.2.max(1) as f64,
        100.0 * tot.3 as f64 / tot.0.max(1) as f64,
    );
}
