//! Ad-hoc replay profiler, built on the observability span layer.
//!
//! Replays the throughput-bench BSD trace with an enabled [`Recorder`]
//! and reports, from the journal aggregates, where simulated time and
//! energy go — per op kind and per layer — plus host-side throughput for
//! both the traced and the no-op-recorder configurations.

use ssmc_bench::obs_trace::{throughput_machine, traced_replay};
use ssmc_core::run_trace;
use ssmc_sim::obs::{EVENT_KINDS, LAYERS};
use ssmc_trace::{GeneratorConfig, Workload};
use std::time::Instant;

const OPS: u64 = 25_000;

fn main() {
    // Traced run: one pass, journal carries the whole breakdown.
    let start = Instant::now();
    let artifact = traced_replay(Workload::Bsd, OPS);
    let traced_secs = start.elapsed().as_secs_f64();

    // Untraced run on a fresh machine: what the hot path costs with the
    // no-op recorder (the configuration the throughput bench measures).
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(OPS as usize)
        .with_max_live_bytes(4 << 20)
        .generate();
    let mut m = throughput_machine();
    let start = Instant::now();
    run_trace(&mut m, &trace);
    let plain_secs = start.elapsed().as_secs_f64();

    println!(
        "host: traced {:.3}s ({:.0} ops/sec), no-op recorder {:.3}s ({:.0} ops/sec)",
        traced_secs,
        OPS as f64 / traced_secs,
        plain_secs,
        OPS as f64 / plain_secs,
    );
    println!();

    let journal = &artifact.journal;
    let machine_ns: u128 = journal
        .aggregates
        .iter()
        .filter(|r| r.kind.layer() == ssmc_sim::obs::Layer::Machine)
        .map(|r| r.agg.latency.sum())
        .sum();

    println!("simulated time and energy by span kind:");
    println!(
        "{:<20} {:>8} {:>12} {:>12} {:>10} {:>8}",
        "kind", "count", "mean ns", "p99 ns", "energy J", "% sim"
    );
    for kind in EVENT_KINDS {
        let Some(row) = journal.aggregate(kind) else {
            continue;
        };
        let h = &row.agg.latency;
        let share = if machine_ns > 0 {
            100.0 * h.sum() as f64 / machine_ns as f64
        } else {
            0.0
        };
        println!(
            "{:<20} {:>8} {:>12.1} {:>12} {:>10.4} {:>7.1}%",
            kind.name(),
            row.agg.count,
            h.mean(),
            h.quantile(0.99),
            row.agg.energy.as_joules(),
            share,
        );
    }
    println!();

    println!("per layer:");
    for layer in LAYERS {
        let (count, latency_ns, energy, pages, bytes) = journal.layer_totals(layer);
        if count == 0 {
            continue;
        }
        println!(
            "{:<10} {:>8} spans  {:>10.1} ms sim  {:>10.4} J  {:>8} pages  {:>12} bytes",
            layer.name(),
            count,
            latency_ns as f64 / 1e6,
            energy.as_joules(),
            pages,
            bytes,
        );
    }
}
