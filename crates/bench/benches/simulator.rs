//! Micro-benchmarks of the simulator itself, on an in-tree timer harness.
//!
//! These measure *host* throughput of the building blocks each experiment
//! leans on (device ops, storage-manager paths, file-system operations,
//! trace generation and replay), one group per experiment family, so
//! regressions in the simulator's own performance are caught next to the
//! experiment that would suffer.
//!
//! The harness auto-calibrates an iteration count per scenario to fill a
//! short measurement window, then reports mean ns/iter (and MB/s where a
//! byte throughput is declared). Run with:
//!
//! ```text
//! cargo bench -p ssmc-bench
//! cargo bench -p ssmc-bench -- t2                  # filter by substring
//! cargo bench -p ssmc-bench -- --smoke             # short CI mode
//! cargo bench -p ssmc-bench -- --json BENCH_throughput.json
//! cargo bench -p ssmc-bench -- --alloc-guard      # zero-alloc sentinel
//! cargo bench -p ssmc-bench -- --check BENCH_throughput.json  # perf gate
//! ```

use ssmc_bench::alloc_sentinel::CountingAlloc;
use ssmc_core::{run_trace, MachineConfig, MobileComputer};
use ssmc_baseline::{BaselineConfig, DiskFs};
use ssmc_device::{BlockId, Dram, DramSpec, Flash, FlashSpec};
use ssmc_memfs::{MemFs, WritePolicy};
use ssmc_sim::report::{FromReport, ToReport};
use ssmc_sim::{Clock, Energy, Histogram, SimDuration, SimTime, Table};
use ssmc_storage::{StorageConfig, StorageManager};
use ssmc_trace::{
    coalesce_key, kind_code, replay, replay_stream, BatchTarget, FileId, FileOp, GeneratorConfig,
    OpStream, OpStreamFileReader, OpStreamWriter, TraceRecord, TraceTarget, Workload, BATCH_ERROR,
    MAX_BATCH,
};
use std::hint::black_box;
// lint: allow(D3): host-side bench harness state, not simulator code;
// the atomic is a process-global CLI flag and touches no SimTime path.
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Short-mode switch (`--smoke`): shrinks the timing windows and the
/// macrobenchmark traces so CI can exercise every scenario in seconds.
// lint: allow(D3): single-threaded CLI flag set once during argument
// parsing before any scenario runs; atomic only because statics demand it.
static SMOKE: AtomicBool = AtomicBool::new(false);

/// The dynamic half of the zero-alloc invariant: every heap allocation
/// this binary makes is counted, so `--alloc-guard` can assert that a
/// steady-state replay window makes none. Installed only here — the
/// library and the test binaries run on the system allocator.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn smoke() -> bool {
    SMOKE.load(Ordering::Relaxed)
}

/// Wall-clock budget per measured scenario.
fn measure_window() -> Duration {
    if smoke() {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(300)
    }
}

/// Calibration budget used to size the iteration count.
fn calibrate_window() -> Duration {
    if smoke() {
        Duration::from_millis(5)
    } else {
        Duration::from_millis(30)
    }
}

struct Group {
    name: &'static str,
    filter: Option<String>,
    throughput_bytes: Option<u64>,
}

impl Group {
    fn new(name: &'static str, filter: Option<String>) -> Self {
        Group {
            name,
            filter,
            throughput_bytes: None,
        }
    }

    fn throughput_bytes(&mut self, bytes: u64) {
        self.throughput_bytes = Some(bytes);
    }

    /// Benchmarks a stateful closure: `f` is called once per iteration
    /// against state built once by `setup` and reused across the run
    /// (matching criterion's `iter` with captured state).
    fn bench<S, F: FnMut(&mut S)>(&self, scenario: &str, setup: impl Fn() -> S, mut f: F) {
        let full = format!("{}/{}", self.name, scenario);
        if let Some(want) = &self.filter {
            if !full.contains(want.as_str()) {
                return;
            }
        }
        let mut state = setup();
        // Calibrate: how many iterations fit the calibration window?
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                f(black_box(&mut state));
            }
            let took = start.elapsed();
            if took >= calibrate_window() {
                let scale =
                    measure_window().as_secs_f64() / took.as_secs_f64().max(1e-9);
                n = ((n as f64) * scale).max(1.0) as u64;
                break;
            }
            n = n.saturating_mul(4);
        }
        // Measure on fresh state so calibration churn doesn't skew it.
        let mut state = setup();
        let start = Instant::now();
        for _ in 0..n {
            f(black_box(&mut state));
        }
        let took = start.elapsed();
        let ns_per_iter = took.as_nanos() as f64 / n as f64;
        let mut line = format!("{full:<45} {n:>10} iters  {ns_per_iter:>12.1} ns/iter");
        if let Some(bytes) = self.throughput_bytes {
            let mbps = bytes as f64 * n as f64 / took.as_secs_f64() / (1 << 20) as f64;
            line.push_str(&format!("  {mbps:>10.1} MB/s"));
        }
        println!("{line}");
    }

    /// Benchmarks a setup-heavy scenario: `setup` runs per iteration
    /// outside the timed section (criterion's `iter_batched`).
    fn bench_batched<S, R>(
        &self,
        scenario: &str,
        setup: impl Fn() -> S,
        mut f: impl FnMut(S) -> R,
    ) {
        let full = format!("{}/{}", self.name, scenario);
        if let Some(want) = &self.filter {
            if !full.contains(want.as_str()) {
                return;
            }
        }
        // Batched scenarios have expensive setups; bound total iterations
        // instead of filling the window exactly.
        let probe_state = setup();
        let probe_start = Instant::now();
        black_box(f(probe_state));
        let per_iter = probe_start.elapsed();
        let n = (measure_window().as_secs_f64() / per_iter.as_secs_f64().max(1e-9))
            .clamp(1.0, 200.0) as u64;
        let mut timed = Duration::ZERO;
        for _ in 0..n {
            let state = setup();
            let start = Instant::now();
            black_box(f(state));
            timed += start.elapsed();
        }
        let ns_per_iter = timed.as_nanos() as f64 / n as f64;
        println!("{full:<45} {n:>10} iters  {ns_per_iter:>12.1} ns/iter");
    }
}

fn small_flash() -> FlashSpec {
    FlashSpec {
        banks: 2,
        blocks_per_bank: 32,
        block_bytes: 16 * 1024,
        write_unit: 512,
        // The harness drives many iterations; endurance is measured by
        // the experiments binary, not these host-throughput benches.
        endurance: u64::MAX,
        ..FlashSpec::default()
    }
}

/// T1 family: raw device-model operation throughput.
fn bench_devices(filter: Option<String>) {
    let mut g = Group::new("t1_device_micro", filter);
    g.throughput_bytes(512);
    g.bench(
        "flash_read_512",
        || {
            let mut f = Flash::new(small_flash(), Clock::shared());
            f.program(0, &[0u8; 512]).expect("program");
            (f, [0u8; 512])
        },
        |(f, buf)| {
            f.read(0, buf).expect("read");
        },
    );
    g.bench(
        "flash_program_erase_cycle",
        || Flash::new(small_flash(), Clock::shared()),
        |f| {
            f.program(0, &[0u8; 512]).expect("program");
            f.erase(BlockId(0)).expect("erase");
        },
    );
    g.bench(
        "dram_write_512",
        || Dram::new(DramSpec::default().with_capacity(1 << 20), Clock::shared()),
        |d| {
            d.write(0, &[0u8; 512]).expect("write");
        },
    );
}

/// F2/F5 family: storage-manager write path and GC under churn.
fn bench_storage(filter: Option<String>) {
    let mut g = Group::new("f2_f5_storage_manager", filter);
    g.throughput_bytes(512);
    g.bench(
        "write_page_buffered",
        || {
            let clock = Clock::shared();
            let cfg = StorageConfig {
                flash: small_flash(),
                dram_buffer_bytes: 64 * 512,
                ..StorageConfig::default()
            };
            (StorageManager::new(cfg, clock), 0u64)
        },
        |(sm, p)| {
            sm.write_page(*p % 16, &[0u8; 512]).expect("write");
            *p += 1;
        },
    );
    g.bench(
        "churn_with_gc",
        || {
            let clock = Clock::shared();
            let cfg = StorageConfig {
                flash: small_flash(),
                dram_buffer_bytes: 16 * 512,
                checkpointing: false,
                ..StorageConfig::default()
            };
            let mut sm = StorageManager::new(cfg, clock.clone());
            for p in 0..400u64 {
                sm.write_page(p, &[0u8; 512]).expect("fill");
            }
            sm.sync().expect("sync");
            (sm, clock, 0u64)
        },
        |(sm, clock, i)| {
            sm.write_page(*i % 400, &[0u8; 512]).expect("update");
            *i += 1;
            if i.is_multiple_of(64) {
                sm.sync().expect("sync");
                clock.advance(ssmc_sim::SimDuration::from_secs(1));
                sm.tick().expect("tick");
            }
        },
    );
}

/// T2 family: file-system operations on both organisations.
fn bench_filesystems(filter: Option<String>) {
    let g = Group::new("t2_fs_ops", filter);
    g.bench(
        "memfs_create_write_delete",
        || {
            let clock = Clock::shared();
            let cfg = StorageConfig {
                flash: small_flash().with_capacity(8 << 20),
                dram_buffer_bytes: 256 * 512,
                ..StorageConfig::default()
            };
            let sm = StorageManager::new(cfg, clock);
            let fs = MemFs::new(sm, WritePolicy::CopyOnWrite).expect("mount");
            (fs, 0u64)
        },
        |(fs, i)| {
            let path = format!("/bench{i}");
            let fd = fs.create(&path).expect("create");
            fs.write(fd, 0, &[7u8; 2048]).expect("write");
            fs.unlink(&path).expect("unlink");
            *i += 1;
        },
    );
    g.bench(
        "diskfs_create_write_delete",
        || (DiskFs::new(BaselineConfig::default(), Clock::shared()), 0u64),
        |(fs, i)| {
            fs.create(*i).expect("create");
            fs.write(*i, 0, 2048).expect("write");
            fs.delete(*i).expect("delete");
            *i += 1;
        },
    );
}

/// F6 family: VM fault handling and XIP launches.
fn bench_vm(filter: Option<String>) {
    let g = Group::new("f6_vm", filter);
    g.bench_batched(
        "xip_launch_64k",
        || {
            let mut m = MobileComputer::new(MachineConfig::small_notebook());
            let fd = m.fs().create("/app").expect("create");
            m.fs().write(fd, 0, &vec![0u8; 64 * 1024]).expect("write");
            m.fs().sync().expect("sync");
            m
        },
        |mut m| m.launch_app("/app", true).expect("launch"),
    );
}

/// F7/T2b family: trace generation and replay throughput.
fn bench_traces(filter: Option<String>) {
    let g = Group::new("f7_trace_replay", filter);
    g.bench(
        "generate_bsd_5k",
        || 0u64,
        |seed| {
            *seed += 1;
            black_box(
                GeneratorConfig::new(Workload::Bsd)
                    .with_ops(5_000)
                    .with_seed(*seed)
                    .generate(),
            );
        },
    );
    let trace = GeneratorConfig::new(Workload::Office)
        .with_ops(2_000)
        .with_max_live_bytes(1 << 20)
        .generate();
    g.bench_batched(
        "replay_office_2k_on_machine",
        || MobileComputer::new(MachineConfig::small_notebook()),
        |mut m| {
            let clock = m.clock().clone();
            replay(&trace, &mut m, &clock)
        },
    );
}

/// Host ops/sec of the BSD macrobenchmark measured on the hash-map,
/// allocate-per-operation storage stack immediately before the dense
/// hot-path rework, in this repo's CI container. The dense-path speedup
/// reported in `BENCH_throughput.json` is relative to this recording.
const BASELINE_OPS_PER_SEC: [(&str, f64); 3] = [
    ("bsd", 97_639.0),
    ("office", 136_506.0),
    ("database", 41_322.0),
];

/// The machine the macrobenchmark replays into: the F2 notebook
/// configuration with its 1 MB battery-backed write buffer, so the run
/// exercises buffering, flushing, GC, and checkpointing together.
fn throughput_machine() -> MobileComputer {
    let mut cfg = MachineConfig::with_sizes("throughput", 8 << 20, 24 << 20);
    cfg.write_buffer_bytes = Some(1 << 20);
    MobileComputer::new(cfg)
}

/// The four macrobenchmark workloads, including the metadata-heavy
/// mail-spool trace that stresses the directory index rather than the
/// data path.
const THROUGHPUT_WORKLOADS: [(Workload, &str); 4] = [
    (Workload::Bsd, "bsd"),
    (Workload::Office, "office"),
    (Workload::Database, "database"),
    (Workload::MailSpool, "mail-spool"),
];

/// One measured macrobenchmark row.
struct ThroughputRow {
    name: &'static str,
    ops: u64,
    data_bytes: u64,
    ops_per_sec: f64,
    mbps: f64,
}

/// Replays each workload through the full stack (trace → fs → storage →
/// devices), best-of-`reps` on fresh machines: the fastest run is the
/// one least disturbed by the host, which is the quantity we track.
fn measure_throughput(ops: usize, reps: usize) -> Vec<ThroughputRow> {
    THROUGHPUT_WORKLOADS
        .iter()
        .map(|&(workload, name)| measure_legacy_row(workload, name, ops, reps))
        .collect()
}

/// One per-record replay row, best-of-`reps` on fresh machines.
fn measure_legacy_row(workload: Workload, name: &'static str, ops: usize, reps: usize) -> ThroughputRow {
    let trace = GeneratorConfig::new(workload)
        .with_ops(ops)
        .with_max_live_bytes(4 << 20)
        .generate();
    let data_bytes: u64 = trace
        .records
        .iter()
        .map(|r| match r.op {
            FileOp::Write { len, .. } | FileOp::Read { len, .. } => len,
            _ => 0,
        })
        .sum();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut m = throughput_machine();
        let start = Instant::now();
        black_box(run_trace(&mut m, &trace));
        best = best.min(start.elapsed().as_secs_f64());
    }
    ThroughputRow {
        name,
        ops: trace.records.len() as u64,
        data_bytes,
        ops_per_sec: trace.records.len() as f64 / best,
        mbps: data_bytes as f64 / best / (1 << 20) as f64,
    }
}

/// Host ops/sec of the same workloads on the per-record replay path as
/// recorded in `BENCH_throughput.json` immediately before the compiled
/// op-stream pipeline landed. The `speedup` column of the `stream_*`
/// rows measures the batched streaming path against these.
const STREAM_BASELINE_OPS_PER_SEC: [(&str, f64); 3] = [
    ("stream_bsd", 318_634.2),
    ("stream_office", 403_639.5),
    ("stream_database", 98_720.7),
];

/// The stream-eligible macrobenchmark workloads (mail-spool is metadata
/// churn with nothing to coalesce, so it stays on the per-record rows).
const STREAM_WORKLOADS: [(Workload, &str); 3] = [
    (Workload::Bsd, "stream_bsd"),
    (Workload::Office, "stream_office"),
    (Workload::Database, "stream_database"),
];

/// The million-op machine: the throughput configuration on external
/// power (a ~1 kWh pack) — a million operations drain the stock 10 Wh
/// notebook battery about 150 k ops in, and this row measures the
/// storage stack, not battery exhaustion (experiment T3 covers that).
fn stream_1m_machine() -> MobileComputer {
    let mut cfg = MachineConfig::with_sizes("stream-1m", 8 << 20, 24 << 20);
    cfg.write_buffer_bytes = Some(1 << 20);
    cfg.battery.primary_capacity = Energy::from_joules(3_600_000.0);
    MobileComputer::new(cfg)
}

/// The compiled-stream macrobenchmark: the same traces as the rows
/// above, compiled to dense fixed-width records and replayed through the
/// batching driver. The timed section includes the record decode, so the
/// rows compare end to end with the per-record path.
fn measure_stream_throughput(ops: usize, reps: usize) -> Vec<ThroughputRow> {
    STREAM_WORKLOADS
        .iter()
        .map(|&(workload, name)| measure_stream_row(workload, name, ops, reps))
        .collect()
}

/// One compiled-stream row, best-of-`reps` on fresh machines.
fn measure_stream_row(workload: Workload, name: &'static str, ops: usize, reps: usize) -> ThroughputRow {
    let trace = GeneratorConfig::new(workload)
        .with_ops(ops)
        .with_max_live_bytes(4 << 20)
        .generate();
    let data_bytes: u64 = trace
        .records
        .iter()
        .map(|r| match r.op {
            FileOp::Write { len, .. } | FileOp::Read { len, .. } => len,
            _ => 0,
        })
        .sum();
    let stream = OpStream::compile(&trace);
    drop(trace);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut m = throughput_machine();
        let clock = m.clock().clone();
        let start = Instant::now();
        black_box(replay_stream(stream.cursor(), &mut m, &clock));
        best = best.min(start.elapsed().as_secs_f64());
    }
    ThroughputRow {
        name,
        ops: stream.len() as u64,
        data_bytes,
        ops_per_sec: stream.len() as f64 / best,
        mbps: data_bytes as f64 / best / (1 << 20) as f64,
    }
}

/// The timeline-enabled streaming row: the same compiled BSD stream as
/// `stream_bsd`, replayed with the flight recorder sampling every
/// simulated second into a temp-file `.tl` (~900 rows over this trace's
/// ~940 simulated seconds). Sitting next to `stream_bsd` in the
/// recording keeps the sampler's cost on the record: the `--check` gate
/// fails if sampling ever stops being cheap.
fn measure_stream_tl_row(ops: usize, reps: usize) -> ThroughputRow {
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(ops)
        .with_max_live_bytes(4 << 20)
        .generate();
    let data_bytes: u64 = trace
        .records
        .iter()
        .map(|r| match r.op {
            FileOp::Write { len, .. } | FileOp::Read { len, .. } => len,
            _ => 0,
        })
        .sum();
    let stream = OpStream::compile(&trace);
    drop(trace);
    let path = std::env::temp_dir().join("ssmc_bench_stream_bsd.tl");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut m = throughput_machine();
        m.enable_timeline_file(&path, SimDuration::from_secs(1))
            .expect("enable bench timeline");
        let clock = m.clock().clone();
        let start = Instant::now();
        black_box(replay_stream(stream.cursor(), &mut m, &clock));
        best = best.min(start.elapsed().as_secs_f64());
        let summary = m
            .finish_timeline()
            .expect("finish bench timeline")
            .expect("timeline stayed healthy");
        assert!(summary.rows > 0, "timeline must sample during the replay");
    }
    let _ = std::fs::remove_file(&path);
    ThroughputRow {
        name: "stream_bsd_tl",
        ops: stream.len() as u64,
        data_bytes,
        ops_per_sec: stream.len() as f64 / best,
        mbps: data_bytes as f64 / best / (1 << 20) as f64,
    }
}

/// The million-op streaming row: the trace is generated straight into a
/// stream file — a `Vec<TraceRecord>` of this trace never exists — and
/// replayed by decoding records from disk as they are consumed.
fn measure_stream_1m(reps: usize) -> ThroughputRow {
    let ops = if smoke() { 50_000 } else { 1_000_000 };
    let path = std::env::temp_dir().join("ssmc_stream_bsd_1m.ops");
    let mut w = OpStreamWriter::create(&path, "stream-bsd-1m").expect("create stream file");
    let written = GeneratorConfig::new(Workload::Bsd)
        .with_ops(ops)
        .with_max_live_bytes(4 << 20)
        .generate_into(&mut w)
        .expect("generate into stream");
    w.finish().expect("finish stream");
    // One decode pass for the data-byte column.
    let mut data_bytes = 0u64;
    let mut r = OpStreamFileReader::open(&path).expect("open stream");
    while let Some(rec) = r.next_record().expect("decode stream") {
        if let FileOp::Write { len, .. } | FileOp::Read { len, .. } = rec.op {
            data_bytes += len;
        }
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut m = stream_1m_machine();
        let clock = m.clock().clone();
        let mut r = OpStreamFileReader::open(&path).expect("open stream");
        let start = Instant::now();
        let (report, _) = replay_stream(
            std::iter::from_fn(|| r.next_record().expect("decode stream")),
            &mut m,
            &clock,
        );
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(report.ops, written, "stream must replay every record");
    }
    let _ = std::fs::remove_file(&path);
    ThroughputRow {
        name: "stream_bsd_1m",
        ops: written,
        data_bytes,
        ops_per_sec: written as f64 / best,
        mbps: data_bytes as f64 / best / (1 << 20) as f64,
    }
}

/// End-to-end macrobenchmark: reports host ops/sec and bytes/sec. With
/// `--json PATH`, writes the table through the in-tree report module so
/// the perf trajectory is diffable across PRs.
fn bench_throughput(filter: Option<String>, json: Option<std::path::PathBuf>) {
    if let Some(want) = &filter {
        if !"throughput".contains(want.as_str()) && json.is_none() {
            return;
        }
    }
    let ops = if smoke() { 2_000 } else { 25_000 };
    let reps = if smoke() { 1 } else { 3 };
    let mut table = Table::new(
        "BENCH: end-to-end trace replay throughput (host-side, full stack)",
        &[
            "workload",
            "ops",
            "data bytes",
            "ops/sec",
            "MB/sec",
            "baseline ops/sec",
            "speedup",
        ],
    );
    let mut rows = measure_throughput(ops, reps);
    rows.extend(measure_stream_throughput(ops, reps));
    rows.push(measure_stream_tl_row(ops, reps));
    rows.push(measure_stream_1m(if smoke() { 1 } else { 2 }));
    for row in rows {
        let baseline = BASELINE_OPS_PER_SEC
            .iter()
            .chain(STREAM_BASELINE_OPS_PER_SEC.iter())
            .find(|(n, _)| *n == row.name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        let speedup = if baseline > 0.0 && !smoke() {
            row.ops_per_sec / baseline
        } else {
            0.0
        };
        println!(
            "throughput/{:<37} {:>10} ops  {:>12.0} ops/sec  {:>8.1} MB/s",
            row.name, row.ops, row.ops_per_sec, row.mbps
        );
        table.row(vec![
            row.name.into(),
            row.ops.into(),
            row.data_bytes.into(),
            row.ops_per_sec.into(),
            row.mbps.into(),
            baseline.into(),
            speedup.into(),
        ]);
    }
    if let Some(path) = json {
        let json = vec![table].to_report().encode_pretty();
        std::fs::write(&path, json).expect("write throughput json");
        println!("wrote {}", path.display());
    }
}

/// Fractional slowdown tolerated by `--check` before the gate fails,
/// measured against the host-normalized floor (see [`check_throughput`]).
/// Machine load moves every row of one run in the same direction — a
/// full `ci.sh` pipeline leaves the host 15–25% slow by the time the
/// gate runs — so raw recorded-value floors fire on machine state, not
/// code. After dividing out the run-wide median measured/recorded
/// ratio, the residual per-row spread observed on a loaded single-core
/// host stays within ±10%, so 15% only fires on a row that lost ground
/// relative to its peers: a code regression, not a slow afternoon.
const CHECK_TOLERANCE: f64 = 0.15;

/// Absolute backstop for the normalized gate. Normalization cannot
/// distinguish a uniformly slow machine from a uniform code regression,
/// so if the run-wide median measured/recorded ratio collapses past 2×
/// the gate fails outright — measured host sag tops out around 25%, and
/// nothing legitimate halves every workload at once.
const CHECK_GLOBAL_FLOOR: f64 = 0.5;

/// Extra measurement rounds granted to a row that lands below its floor
/// before the gate declares a regression. Host noise on shared machines
/// only ever makes a run *slower* than the simulator's true speed, so a
/// single later sample at or above the floor is proof there is no
/// regression; persistent failure across every round is the real signal.
/// Sized for the load swings measured on shared single-core hosts,
/// where individual samples range ±30% around the quiet-machine speed.
const CHECK_RETRIES: usize = 3;

/// Re-measures a single recorded row by name (used by the `--check`
/// retry rounds). Returns `None` for names no measure function owns.
fn remeasure_row(name: &str, ops: usize, reps: usize) -> Option<ThroughputRow> {
    if name == "stream_bsd_1m" {
        return Some(measure_stream_1m(1));
    }
    if name == "stream_bsd_tl" {
        return Some(measure_stream_tl_row(ops, reps));
    }
    if let Some(&(w, n)) = THROUGHPUT_WORKLOADS.iter().find(|(_, n)| *n == name) {
        return Some(measure_legacy_row(w, n, ops, reps));
    }
    if let Some(&(w, n)) = STREAM_WORKLOADS.iter().find(|(_, n)| *n == name) {
        return Some(measure_stream_row(w, n, ops, reps));
    }
    None
}

/// `--check PATH`: the throughput regression gate. Re-measures the full
/// macrobenchmark, estimates the host's current speed relative to the
/// recording in `PATH` (normally `BENCH_throughput.json`) as the median
/// measured/recorded ratio across all rows, and fails (panics, so the
/// process exits non-zero) if any workload lands more than
/// [`CHECK_TOLERANCE`] below its host-normalized floor, or if the
/// median itself collapses past [`CHECK_GLOBAL_FLOOR`]. Workloads in
/// the recording but missing from the current build — or vice versa —
/// fail too: silent coverage loss is a regression.
fn check_throughput(path: &std::path::Path) {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("check: cannot read {}: {e}", path.display()));
    let value = ssmc_sim::report::Value::decode(&json).expect("check: recording must parse");
    let tables = Vec::<Table>::from_report(&value).expect("check: recording must decode");
    let table = tables.first().expect("check: recording must hold a table");
    let mut recorded: Vec<(String, f64)> = Vec::new();
    for row in &table.rows {
        let (Some(ssmc_sim::Cell::Text(name)), Some(ssmc_sim::Cell::Num(ops))) =
            (row.first(), row.get(3))
        else {
            panic!("check: malformed row in {}", path.display());
        };
        recorded.push((name.clone(), *ops));
    }
    println!(
        "check: re-measuring {} workloads against {} (tolerance {:.0}%)…",
        THROUGHPUT_WORKLOADS.len() + STREAM_WORKLOADS.len() + 2,
        path.display(),
        CHECK_TOLERANCE * 100.0
    );
    let mut fresh = measure_throughput(25_000, 3);
    fresh.extend(measure_stream_throughput(25_000, 3));
    fresh.push(measure_stream_tl_row(25_000, 3));
    fresh.push(measure_stream_1m(1));
    // Host-state normalization: machine load moves every row of a run in
    // the same direction, so the run-wide median measured/recorded ratio
    // estimates the host's current speed relative to the recording.
    // Floors scale by it — capped at 1.0, because a faster host must not
    // raise the bar — which keeps the gate sensitive to a row that lost
    // ground relative to its peers and blind to the machine being
    // globally slow today. The median stays fixed across retry rounds so
    // every row is judged against the same host estimate.
    let mut ratios: Vec<f64> = fresh
        .iter()
        .filter_map(|row| {
            recorded
                .iter()
                .find(|(n, _)| n == row.name)
                .map(|(_, was)| row.ops_per_sec / was)
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let host = if ratios.is_empty() {
        1.0
    } else {
        let mid = ratios.len() / 2;
        let median = if ratios.len() % 2 == 0 {
            (ratios[mid - 1] + ratios[mid]) / 2.0
        } else {
            ratios[mid]
        };
        median.min(1.0)
    };
    println!("check: host-state factor {host:.2} (median measured/recorded ratio, capped at 1)");
    let mut failures: Vec<String> = Vec::new();
    if host < CHECK_GLOBAL_FLOOR {
        failures.push(format!(
            "whole suite: median measured/recorded ratio {host:.2} is below the global \
             floor {CHECK_GLOBAL_FLOOR}; a uniform collapse this deep is a regression, \
             not machine load"
        ));
    }
    for row in &fresh {
        let Some((_, was)) = recorded.iter().find(|(n, _)| n == row.name) else {
            failures.push(format!(
                "{}: not in the recording — re-run with --json to add it",
                row.name
            ));
            continue;
        };
        let floor = was * host * (1.0 - CHECK_TOLERANCE);
        let mut measured = row.ops_per_sec;
        // Noise only slows a sample down, never speeds the simulator up:
        // give a below-floor row fresh rounds before calling it a
        // regression.
        let mut round = 0;
        while measured < floor && round < CHECK_RETRIES {
            round += 1;
            if let Some(again) = remeasure_row(row.name, 25_000, 3) {
                measured = measured.max(again.ops_per_sec);
            } else {
                break;
            }
        }
        let verdict = if measured >= floor {
            if round > 0 {
                "ok (retried)"
            } else {
                "ok"
            }
        } else {
            "FAIL"
        };
        println!(
            "check: {:<16} {:>12.0} ops/sec  (recorded {:>12.0}, floor {:>12.0})  {verdict}",
            row.name, measured, was, floor
        );
        if measured < floor {
            failures.push(format!(
                "{}: {:.0} ops/sec is {:.1}% below the host-normalized floor {:.0} \
                 (recorded {:.0}, host factor {:.2}) after {} rounds",
                row.name,
                measured,
                (1.0 - measured / floor) * 100.0,
                floor,
                was,
                host,
                1 + CHECK_RETRIES
            ));
        }
    }
    for (name, _) in &recorded {
        if !fresh.iter().any(|r| r.name == name.as_str()) {
            failures.push(format!("{name}: recorded workload no longer measured"));
        }
    }
    if !failures.is_empty() {
        panic!("throughput regression gate FAILED:\n  {}", failures.join("\n  "));
    }
    println!(
        "check: OK — all workloads within {:.0}% of host-normalized floors",
        CHECK_TOLERANCE * 100.0
    );
}

/// Working set driven by the alloc-guard's steady-state loop.
const GUARD_FILES: u64 = 8;
/// 4 KB slots per file; rewrites cycle through them so the flash sees
/// real churn (dead pages, GC pressure) without ever extending a file.
const GUARD_SLOTS: u64 = 8;
const GUARD_SLOT_BYTES: u64 = 4096;

/// The op the guard issues at step `i`: mostly slot rewrites, every
/// fourth op a read, every 64th a sync — the same shape the throughput
/// macrobenchmark's traces exercise, minus namespace churn (create and
/// delete allocate by design; the zero-alloc contract covers the
/// steady-state data path).
fn guard_op(i: u64, base: FileId) -> FileOp {
    let file = base + (i % GUARD_FILES);
    let slot = (i / GUARD_FILES) % GUARD_SLOTS;
    let offset = slot * GUARD_SLOT_BYTES;
    if i % 64 == 63 {
        FileOp::Sync
    } else if i % 4 == 3 {
        FileOp::Read {
            file,
            offset,
            len: GUARD_SLOT_BYTES,
        }
    } else {
        FileOp::Write {
            file,
            offset,
            len: GUARD_SLOT_BYTES,
        }
    }
}

/// `--alloc-guard`: dynamically verifies the zero-alloc hot path.
///
/// Warms the full stack by replaying a generated BSD trace (allocation
/// is expected and fine there — pools, indexes, and scratch vectors are
/// sized during warmup), primes a small working set, runs one settle
/// pass so every recycled buffer has reached steady-state capacity, and
/// then asserts that a long measured window of writes/reads/syncs
/// performs **zero** allocation events (allocs + reallocs; frees are
/// not asserted on). Exits non-zero via panic on violation, listing the
/// first offending ops.
fn alloc_guard() {
    let measured_ops: u64 = if smoke() { 4_000 } else { 25_000 };
    println!("alloc-guard: warming full stack with a BSD trace…");
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(8_000)
        .with_max_live_bytes(4 << 20)
        .generate();
    let mut m = throughput_machine();
    black_box(run_trace(&mut m, &trace));
    let clock = m.clock().clone();

    // Drain the warmup residue: delete every file the trace left live,
    // then let the churn below reclaim it all. Without this, the
    // measured window keeps paying for warmup history — GC discovers
    // never-before-killed warmup pages (growing the dead-copy index)
    // and keeps re-logging warmup-era tombstones — and only converges
    // after the whole log has turned over.
    let mut live: Vec<FileId> = Vec::new();
    for r in &trace.records {
        match r.op {
            FileOp::Create { file } => live.push(file),
            FileOp::Delete { file } => {
                if let Some(pos) = live.iter().position(|&f| f == file) {
                    live.swap_remove(pos);
                }
            }
            _ => {}
        }
    }
    for (i, &file) in live.iter().enumerate() {
        // Tolerate files the replayer failed to create (it counts
        // errors and continues); cleanup only needs best effort.
        let _ = m.apply(&FileOp::Delete { file });
        if i % 32 == 31 {
            m.apply(&FileOp::Sync).expect("guard cleanup sync");
            clock.advance(SimDuration::from_millis(1));
        }
    }
    m.apply(&FileOp::Sync).expect("guard cleanup sync");

    // Fresh file ids above anything the trace used: priming writes them
    // to full size so the measured window never extends a file (file
    // extension legitimately allocates index entries).
    let base: FileId = trace
        .records
        .iter()
        .filter_map(|r| r.op.file())
        .max()
        .unwrap_or(0)
        + 1;
    for f in 0..GUARD_FILES {
        let file = base + f;
        m.apply(&FileOp::Create { file }).expect("guard create");
        for slot in 0..GUARD_SLOTS {
            m.apply(&FileOp::Write {
                file,
                offset: slot * GUARD_SLOT_BYTES,
                len: GUARD_SLOT_BYTES,
            })
            .expect("guard prime write");
        }
    }
    m.apply(&FileOp::Sync).expect("guard prime sync");

    // The guard window also proves the sampler: the timeline is enabled
    // here — registration and the header write allocate now, during
    // warmup — so every measured op below runs with the flight recorder
    // live, and steady-state sampling must allocate nothing. The 1 ms
    // interval against the 20 µs pace lands a sample roughly every 50
    // measured ops.
    let tl_path = std::env::temp_dir().join("ssmc_alloc_guard.tl");
    m.enable_timeline_file(&tl_path, SimDuration::from_millis(1))
        .expect("enable guard timeline");

    // Settle: an un-measured run of the exact measured loop, long
    // enough (~2 full device turnovers of write traffic) that GC has
    // reclaimed every warmup segment, the deleted files' tombstones
    // have all been dropped, and every recycled buffer and index has
    // reached its steady-state capacity. Ends in syncs so nothing
    // buffered or pending crosses into the window.
    let pace = SimDuration::from_micros(20);
    for i in 0..16_384 {
        m.apply(&guard_op(i, base)).expect("guard settle op");
        clock.advance(pace);
    }
    m.apply(&FileOp::Sync).expect("guard settle sync");
    clock.advance(SimDuration::from_millis(5));
    m.apply(&FileOp::Sync).expect("guard drain sync");

    // Measured window. Offenders are recorded into a stack array — the
    // guard itself must not allocate inside the window.
    let rows_before = m.timeline_rows().expect("guard timeline alive");
    let before = ALLOC.counts();
    let mut offenders: [(u64, &'static str, u64); 8] = [(0, "", 0); 8];
    let mut offender_count: usize = 0;
    let mut last_events = before.events();
    for i in 0..measured_ops {
        let op = guard_op(i, base);
        let kind = match op {
            FileOp::Sync => "sync",
            FileOp::Read { .. } => "read",
            _ => "write",
        };
        m.apply(&op).expect("guard measured op");
        clock.advance(pace);
        let events = ALLOC.counts().events();
        if events != last_events {
            if offender_count < offenders.len() {
                offenders[offender_count] = (i, kind, events - last_events);
            }
            offender_count += 1;
            last_events = events;
        }
    }
    let after = ALLOC.counts();
    // The zero-alloc claim only counts if the sampler actually ran
    // inside the window (a write error silently retires the sink).
    let rows_after = m.timeline_rows().expect("guard timeline alive after window");
    assert!(
        rows_after > rows_before,
        "sampler must take rows inside the guard window ({rows_before} -> {rows_after})"
    );
    m.finish_timeline().expect("finish guard timeline");
    let _ = std::fs::remove_file(&tl_path);
    let events = after.events() - before.events();
    let bytes = after.bytes.saturating_sub(before.bytes);
    println!(
        "alloc-guard: {measured_ops} steady-state ops, {events} allocation \
         events ({bytes} bytes), {} frees; {} timeline rows in window",
        after.deallocs - before.deallocs,
        rows_after - rows_before
    );
    if events != 0 {
        for &(i, kind, delta) in offenders.iter().take(offender_count.min(8)) {
            println!("alloc-guard:   op {i} ({kind}): {delta} event(s)");
        }
        if offender_count > 8 {
            println!("alloc-guard:   … and {} more ops allocated", offender_count - 8);
        }
        panic!("alloc-guard FAILED: steady-state hot path allocated");
    }
    println!("alloc-guard: OK — zero allocations per op in steady state");
    alloc_guard_stream();
}

/// The streaming half of the alloc-guard: compiles a million-op stream
/// of the guard's steady-state loop to disk, then replays it by decoding
/// records one at a time through the batching driver's exact coalescing
/// rule, asserting the decode → coalesce → `apply_batch` → histogram
/// loop allocates nothing once the warmup fifth of the stream has
/// passed. Memory is flat no matter how long the stream is: the only
/// per-record state is a 32-byte stack buffer and the bounded batch.
/// Namespace ops allocate by design and are confined to the warmup, as
/// in the in-memory guard above.
fn alloc_guard_stream() {
    let stream_ops: u64 = if smoke() { 60_000 } else { 1_000_000 };
    // Steady state begins once the flash has filled and garbage
    // collection is running: the first GC pass (a little past 16 k ops on
    // this machine) lazily grows per-inode dead-copy windows and similar
    // one-time structures, which is warmup, not a leak. The measured
    // window opens after it.
    let warm = (stream_ops / 5).max(25_000);
    let base: FileId = 1;
    println!("alloc-guard: compiling a {stream_ops}-op stream to disk…");
    let path = std::env::temp_dir().join("ssmc_alloc_guard.ops");
    {
        let mut w = OpStreamWriter::create(&path, "guard-stream").expect("create guard stream");
        let pace = SimDuration::from_micros(20);
        let mut at = SimTime::ZERO;
        // Priming rides at the head of the stream: creates and full-size
        // slot writes, all long before the measured window opens.
        for f in 0..GUARD_FILES {
            at = at + pace;
            w.push(at, &FileOp::Create { file: base + f }).expect("push create");
            for slot in 0..GUARD_SLOTS {
                at = at + pace;
                w.push(
                    at,
                    &FileOp::Write {
                        file: base + f,
                        offset: slot * GUARD_SLOT_BYTES,
                        len: GUARD_SLOT_BYTES,
                    },
                )
                .expect("push prime write");
            }
        }
        for i in 0..stream_ops {
            at = at + pace;
            w.push(at, &guard_op(i, base)).expect("push guard op");
        }
        w.finish().expect("finish guard stream");
    }
    let expected = stream_ops + GUARD_FILES * (1 + GUARD_SLOTS);
    let mut m = stream_1m_machine();
    // The streaming window runs sampler-on too: the decode → coalesce →
    // apply loop and the flight recorder must be allocation-free
    // together, not just separately.
    let tl_path = std::env::temp_dir().join("ssmc_alloc_guard_stream.tl");
    m.enable_timeline_file(&tl_path, SimDuration::from_millis(1))
        .expect("enable guard stream timeline");
    let mut reader = OpStreamFileReader::open(&path).expect("open guard stream");
    let mut batch: Vec<TraceRecord> = Vec::with_capacity(MAX_BATCH);
    let mut lats = [SimDuration::ZERO; MAX_BATCH];
    let mut hists: [Histogram; 8] = std::array::from_fn(|_| Histogram::new());
    let mut pending: Option<TraceRecord> = None;
    let mut applied: u64 = 0;
    let mut errors: u64 = 0;
    let mut window = None;
    let mut rows_at_window: u64 = 0;
    loop {
        batch.clear();
        let Some(first) = pending
            .take()
            .or_else(|| reader.next_record().expect("decode guard stream"))
        else {
            break;
        };
        let key = coalesce_key(&first.op);
        batch.push(first);
        if key.is_some() {
            while batch.len() < MAX_BATCH {
                match reader.next_record().expect("decode guard stream") {
                    Some(r) if coalesce_key(&r.op) == key => batch.push(r),
                    Some(r) => {
                        pending = Some(r);
                        break;
                    }
                    None => break,
                }
            }
        }
        let n = batch.len();
        m.apply_batch(&batch, &mut lats[..n]);
        for (rec, &lat) in batch.iter().zip(&lats[..n]) {
            if lat == BATCH_ERROR {
                errors += 1;
            } else {
                hists[kind_code(rec.op.kind()) as usize].record_duration(lat);
            }
        }
        applied += n as u64;
        if window.is_none() && applied >= warm {
            rows_at_window = m.timeline_rows().expect("guard stream timeline alive");
            window = Some(ALLOC.counts());
        }
    }
    let before = window.expect("stream shorter than its warmup window");
    let after = ALLOC.counts();
    let rows_in_window = m
        .timeline_rows()
        .expect("guard stream timeline alive at end")
        - rows_at_window;
    assert!(
        rows_in_window > 0,
        "sampler must take rows inside the streaming guard window"
    );
    m.finish_timeline().expect("finish guard stream timeline");
    let _ = std::fs::remove_file(&tl_path);
    let _ = std::fs::remove_file(&path);
    assert_eq!(applied, expected, "stream must decode every record");
    assert_eq!(errors, 0, "guard stream ops must not fail");
    let events = after.events() - before.events();
    let bytes = after.bytes.saturating_sub(before.bytes);
    println!(
        "alloc-guard: stream window of {} decoded ops, {events} allocation \
         events ({bytes} bytes); {rows_in_window} timeline rows in window",
        applied - warm
    );
    if events != 0 {
        panic!("alloc-guard FAILED: streaming decode/apply loop allocated");
    }
    println!("alloc-guard: OK — flat memory while decoding the op stream");
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; the first free
    // argument (if any) is a substring filter on scenario names. `--smoke`
    // selects the short CI mode and `--json PATH` records the throughput
    // table via the report module.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--") && (*i == 0 || args[i - 1] != "--json")
        })
        .map(|(_, a)| a.clone());
    if args.iter().any(|a| a == "--smoke") {
        SMOKE.store(true, Ordering::Relaxed);
    }
    if args.iter().any(|a| a == "--alloc-guard") {
        alloc_guard();
        return;
    }
    if let Some(path) = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
    {
        check_throughput(&path);
        return;
    }
    let json = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    println!(
        "in-tree bench harness: window {} ms/scenario{}{}",
        measure_window().as_millis(),
        filter
            .as_deref()
            .map(|f| format!(", filter `{f}`"))
            .unwrap_or_default(),
        if smoke() { ", smoke mode" } else { "" }
    );
    bench_devices(filter.clone());
    bench_storage(filter.clone());
    bench_filesystems(filter.clone());
    bench_vm(filter.clone());
    bench_traces(filter.clone());
    bench_throughput(filter, json);
}
