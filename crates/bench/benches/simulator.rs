//! Criterion micro-benchmarks of the simulator itself.
//!
//! These measure *host* throughput of the building blocks each experiment
//! leans on (device ops, storage-manager paths, file-system operations,
//! trace generation and replay), one group per experiment family, so
//! regressions in the simulator's own performance are caught next to the
//! experiment that would suffer.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ssmc_baseline::{BaselineConfig, DiskFs};
use ssmc_core::{MachineConfig, MobileComputer};
use ssmc_device::{BlockId, Dram, DramSpec, Flash, FlashSpec};
use ssmc_memfs::{MemFs, WritePolicy};
use ssmc_sim::Clock;
use ssmc_storage::{StorageConfig, StorageManager};
use ssmc_trace::{replay, GeneratorConfig, Workload};

fn small_flash() -> FlashSpec {
    FlashSpec {
        banks: 2,
        blocks_per_bank: 32,
        block_bytes: 16 * 1024,
        write_unit: 512,
        // Criterion drives millions of iterations; endurance is measured
        // by the experiments binary, not these host-throughput benches.
        endurance: u64::MAX,
        ..FlashSpec::default()
    }
}

/// T1 family: raw device-model operation throughput.
fn bench_devices(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_device_micro");
    g.throughput(Throughput::Bytes(512));
    g.bench_function("flash_read_512", |b| {
        let mut f = Flash::new(small_flash(), Clock::shared());
        f.program(0, &[0u8; 512]).expect("program");
        let mut buf = [0u8; 512];
        b.iter(|| f.read(0, &mut buf).expect("read"));
    });
    g.bench_function("flash_program_erase_cycle", |b| {
        let mut f = Flash::new(small_flash(), Clock::shared());
        b.iter(|| {
            f.program(0, &[0u8; 512]).expect("program");
            f.erase(BlockId(0)).expect("erase");
        });
    });
    g.bench_function("dram_write_512", |b| {
        let mut d = Dram::new(DramSpec::default().with_capacity(1 << 20), Clock::shared());
        b.iter(|| d.write(0, &[0u8; 512]).expect("write"));
    });
    g.finish();
}

/// F2/F5 family: storage-manager write path and GC under churn.
fn bench_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("f2_f5_storage_manager");
    g.throughput(Throughput::Bytes(512));
    g.bench_function("write_page_buffered", |b| {
        let clock = Clock::shared();
        let cfg = StorageConfig {
            flash: small_flash(),
            dram_buffer_bytes: 64 * 512,
            ..StorageConfig::default()
        };
        let mut sm = StorageManager::new(cfg, clock);
        let data = [0u8; 512];
        let mut p = 0u64;
        b.iter(|| {
            sm.write_page(p % 16, &data).expect("write");
            p += 1;
        });
    });
    g.bench_function("churn_with_gc", |b| {
        let clock = Clock::shared();
        let cfg = StorageConfig {
            flash: small_flash(),
            dram_buffer_bytes: 16 * 512,
            checkpointing: false,
            ..StorageConfig::default()
        };
        let mut sm = StorageManager::new(cfg, clock.clone());
        let data = [0u8; 512];
        for p in 0..400u64 {
            sm.write_page(p, &data).expect("fill");
        }
        sm.sync().expect("sync");
        let mut i = 0u64;
        b.iter(|| {
            sm.write_page(i % 400, &data).expect("update");
            i += 1;
            if i.is_multiple_of(64) {
                sm.sync().expect("sync");
                clock.advance(ssmc_sim::SimDuration::from_secs(1));
                sm.tick().expect("tick");
            }
        });
    });
    g.finish();
}

/// T2 family: file-system operations on both organisations.
fn bench_filesystems(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2_fs_ops");
    g.bench_function("memfs_create_write_delete", |b| {
        let clock = Clock::shared();
        let cfg = StorageConfig {
            flash: small_flash().with_capacity(8 << 20),
            dram_buffer_bytes: 256 * 512,
            ..StorageConfig::default()
        };
        let sm = StorageManager::new(cfg, clock);
        let mut fs = MemFs::new(sm, WritePolicy::CopyOnWrite).expect("mount");
        let mut i = 0u64;
        b.iter(|| {
            let path = format!("/bench{i}");
            let fd = fs.create(&path).expect("create");
            fs.write(fd, 0, &[7u8; 2048]).expect("write");
            fs.unlink(&path).expect("unlink");
            i += 1;
        });
    });
    g.bench_function("diskfs_create_write_delete", |b| {
        let clock = Clock::shared();
        let mut fs = DiskFs::new(BaselineConfig::default(), clock);
        let mut i = 0u64;
        b.iter(|| {
            fs.create(i).expect("create");
            fs.write(i, 0, 2048).expect("write");
            fs.delete(i).expect("delete");
            i += 1;
        });
    });
    g.finish();
}

/// F6 family: VM fault handling and XIP launches.
fn bench_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("f6_vm");
    g.bench_function("xip_launch_64k", |b| {
        b.iter_batched(
            || {
                let mut m = MobileComputer::new(MachineConfig::small_notebook());
                let fd = m.fs().create("/app").expect("create");
                m.fs().write(fd, 0, &vec![0u8; 64 * 1024]).expect("write");
                m.fs().sync().expect("sync");
                m
            },
            |mut m| m.launch_app("/app", true).expect("launch"),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

/// F7/T2b family: trace generation and replay throughput.
fn bench_traces(c: &mut Criterion) {
    let mut g = c.benchmark_group("f7_trace_replay");
    g.bench_function("generate_bsd_5k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            GeneratorConfig::new(Workload::Bsd)
                .with_ops(5_000)
                .with_seed(seed)
                .generate()
        });
    });
    g.bench_function("replay_office_2k_on_machine", |b| {
        let trace = GeneratorConfig::new(Workload::Office)
            .with_ops(2_000)
            .with_max_live_bytes(1 << 20)
            .generate();
        b.iter_batched(
            || MobileComputer::new(MachineConfig::small_notebook()),
            |mut m| {
                let clock = m.clock().clone();
                replay(&trace, &mut m, &clock)
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_devices,
    bench_storage,
    bench_filesystems,
    bench_vm,
    bench_traces
);
criterion_main!(benches);
