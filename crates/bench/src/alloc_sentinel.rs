//! A counting global allocator: the dynamic half of the zero-alloc
//! hot-path invariant.
//!
//! `ssmc-lint`'s H1 rule rejects allocation-prone *calls* in hot-path
//! functions statically, but a token rule cannot see through helper
//! functions or container growth. [`CountingAlloc`] closes that gap at
//! run time: the throughput bench installs it as `#[global_allocator]`
//! and, in `--alloc-guard` mode, asserts that a steady-state replay
//! window performs **zero** heap allocations (see
//! `benches/simulator.rs`). Deallocations are counted but not asserted
//! on — dropping a previously allocated buffer in steady state is
//! harmless; acquiring a new one is the regression.
//!
//! This is the only unsafe code in the workspace (every other crate is
//! `#![forbid(unsafe_code)]`), and it is confined to delegating the
//! `GlobalAlloc` contract to [`System`].

// This file is D3-exempt (see ssmc-lint's rule table): allocator
// counters must be updatable through &self from any thread per the
// GlobalAlloc contract, so they have to be atomics, not Cells.
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocation counters observed by the alloc-guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocCounts {
    /// Calls to `alloc`/`alloc_zeroed` that returned non-null.
    pub allocs: u64,
    /// Calls to `realloc` that moved or resized a block.
    pub reallocs: u64,
    /// Calls to `dealloc`.
    pub deallocs: u64,
    /// Total bytes requested by counted allocations.
    pub bytes: u64,
}

impl AllocCounts {
    /// Allocation *events* — the quantity the guard asserts is zero
    /// across a steady-state window. A realloc acquires memory just
    /// like a fresh alloc, so both count; deallocs do not.
    pub fn events(&self) -> u64 {
        self.allocs + self.reallocs
    }
}

/// A `GlobalAlloc` that delegates to [`System`] and counts traffic.
pub struct CountingAlloc {
    allocs: AtomicU64,
    reallocs: AtomicU64,
    deallocs: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAlloc {
    /// A fresh counter set; `const` so it can back a static.
    pub const fn new() -> Self {
        CountingAlloc {
            allocs: AtomicU64::new(0),
            reallocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Reads the counters. Relaxed ordering suffices: the guard reads
    /// on the same thread that allocates, and there is no cross-thread
    /// happens-before to establish.
    pub fn counts(&self) -> AllocCounts {
        AllocCounts {
            allocs: self.allocs.load(Ordering::Relaxed),
            reallocs: self.reallocs.load(Ordering::Relaxed),
            deallocs: self.deallocs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: every method delegates verbatim to `System`, which upholds
// the GlobalAlloc contract; the added atomic increments neither
// allocate nor touch the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller obligations (valid layout) are forwarded to System
    // unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is the caller's, passed through untouched.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            self.allocs.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: caller obligations (p from this allocator, matching
    // layout) are forwarded to System unchanged.
    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        self.deallocs.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `p`/`layout` are the caller's, passed through untouched.
        unsafe { System.dealloc(p, layout) }
    }

    // SAFETY: caller obligations are forwarded to System unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is the caller's, passed through untouched.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            self.allocs.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: caller obligations (p from this allocator, matching
    // layout, valid new_size) are forwarded to System unchanged.
    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: arguments are the caller's, passed through untouched.
        let q = unsafe { System.realloc(p, layout, new_size) };
        if !q.is_null() {
            self.reallocs.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tests exercise the counters directly (not via
    // #[global_allocator], which only the bench binary installs —
    // installing it for every test binary would tax the whole suite).

    #[test]
    fn counts_alloc_and_dealloc_events() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        // SAFETY: layout is valid (non-zero size, power-of-two align);
        // the pointer is deallocated below with the same layout.
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        // SAFETY: p came from `a.alloc` with this exact layout.
        unsafe { a.dealloc(p, layout) };
        let c = a.counts();
        assert_eq!((c.allocs, c.deallocs), (1, 1));
        assert_eq!(c.bytes, 64);
        assert_eq!(c.events(), 1);
    }

    #[test]
    fn realloc_counts_as_an_event() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(32, 8).unwrap();
        // SAFETY: valid layout; block is grown then freed with the
        // grown layout, per the GlobalAlloc contract.
        unsafe {
            let p = a.alloc(layout);
            let q = a.realloc(p, layout, 128);
            a.dealloc(q, Layout::from_size_align(128, 8).unwrap());
        }
        let c = a.counts();
        assert_eq!((c.allocs, c.reallocs, c.deallocs), (1, 1, 1));
        assert_eq!(c.events(), 2);
    }
}
