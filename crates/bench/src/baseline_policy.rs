//! Process-wide baseline cache-policy selection.
//!
//! The experiments binary accepts `--cache-policy lru|lru_k` so the F/T
//! comparisons can be re-run against a baseline whose buffer cache is not
//! a scan-vulnerable strawman. The selection applies to every
//! [`BaselineConfig`] built through [`baseline_config`]; the default is
//! plain LRU, which reproduces the checked-in `results/` byte for byte.

use ssmc_baseline::{BaselineConfig, CachePolicy};
// lint: allow(D3): host-side CLI flag set once during argument parsing
// before any experiment runs; atomic only because statics demand it. No
// simulated-time path reads it.
use std::sync::atomic::{AtomicU32, Ordering};

/// Encoded policy: 0 = LRU, k > 0 = LRU-K with that history depth.
// lint: allow(D3): see the module-level directive — host-side CLI state.
static POLICY: AtomicU32 = AtomicU32::new(0);

/// Selects the buffer-cache policy for subsequently built baselines.
pub fn set_cache_policy(policy: CachePolicy) {
    let enc = match policy {
        CachePolicy::Lru => 0,
        CachePolicy::LruK { k } => k.max(1),
    };
    POLICY.store(enc, Ordering::Relaxed);
}

/// The cache policy in force.
pub fn cache_policy() -> CachePolicy {
    match POLICY.load(Ordering::Relaxed) {
        0 => CachePolicy::Lru,
        k => CachePolicy::LruK { k },
    }
}

/// A [`BaselineConfig`] with the selected cache policy applied.
pub fn baseline_config() -> BaselineConfig {
    BaselineConfig {
        cache_policy: cache_policy(),
        ..BaselineConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmc_core::DiskComputer;
    use ssmc_device::BatterySpec;
    use ssmc_trace::{replay, GeneratorConfig, Workload};

    #[test]
    fn selected_policy_reaches_the_machine_and_its_metrics() {
        // Not a global set_cache_policy here — tests run concurrently and
        // the static is process-wide; build the config directly.
        let cfg = BaselineConfig {
            cache_policy: CachePolicy::lru_k(),
            ..BaselineConfig::default()
        };
        let mut m = DiskComputer::new(cfg, BatterySpec::default());
        let trace = GeneratorConfig::new(Workload::Office)
            .with_ops(2_000)
            .with_max_live_bytes(1 << 20)
            .generate();
        let clock = m.clock().clone();
        let r = replay(&trace, &mut m, &clock);
        assert_eq!(r.errors, 0);
        let reg = m.metrics_registry();
        let hits = reg.counter_value("cache.hits").expect("hits counter");
        let misses = reg.counter_value("cache.misses").expect("misses counter");
        assert!(hits + misses > 0, "cache saw no traffic");
        let rate = reg.gauge_value("cache.hit_rate").expect("hit-rate gauge");
        assert!((0.0..=1.0).contains(&rate), "hit rate {rate} out of range");
        assert!(rate > 0.0, "office working set should get some cache hits");
    }

    #[test]
    fn encoding_round_trips() {
        assert_eq!(cache_policy(), CachePolicy::Lru);
        set_cache_policy(CachePolicy::LruK { k: 3 });
        assert_eq!(cache_policy(), CachePolicy::LruK { k: 3 });
        set_cache_policy(CachePolicy::Lru);
        assert_eq!(cache_policy(), CachePolicy::Lru);
    }
}
