//! Renders a `.tl` timeline (`experiments --timeline-out PATH`) as
//! ASCII: per-metric sparklines, a per-segment wear heatmap, and a
//! cleaning-cost-over-time view — the visual form of the paper's §3
//! erase-ahead argument (cleaning work should run ahead of demand, so
//! the free-segment level should never crash while GC copy traffic
//! spikes).
//!
//! ```text
//! timeline-dump <file.tl> [--metric SUBSTR]
//! ```

use ssmc_bench::obs_diff::{load, DiffInput};
use ssmc_sim::timeline::{ChannelKind, Timeline};
use std::path::Path;

/// Ten-step ASCII intensity ramp used by sparklines and the heatmap.
const RAMP: &[u8] = b" .:-=+*#%@";
/// Maximum sparkline width; longer series are downsampled (max within
/// each cell, so spikes survive).
const WIDTH: usize = 64;

fn shade(v: f64, max: f64) -> char {
    if !v.is_finite() || max <= 0.0 {
        return RAMP[0] as char;
    }
    let idx = ((v / max) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[idx.min(RAMP.len() - 1)] as char
}

fn sparkline(values: &[f64]) -> (String, f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() {
        return ("(no finite samples)".into(), 0.0, 0.0);
    }
    let cells = values.len().min(WIDTH).max(1);
    let mut line = String::with_capacity(cells);
    for c in 0..cells {
        let from = c * values.len() / cells;
        let to = ((c + 1) * values.len() / cells).max(from + 1);
        let cell = values[from..to]
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        line.push(shade(cell - lo, hi - lo));
    }
    (line, lo, hi)
}

/// Per-row deltas of a counter channel (saturating at zero so the rare
/// resetting counter renders as flat, not as a giant wrapped spike).
fn deltas(tl: &Timeline, ch: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(tl.rows());
    let mut prev = 0u64;
    for (row, v) in tl.series(ch).enumerate() {
        out.push(if row == 0 { 0.0 } else { v.saturating_sub(prev) as f64 });
        prev = v;
    }
    out
}

fn main() {
    let mut path = None;
    let mut filter: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metric" => match args.get(i + 1) {
                Some(s) => {
                    filter = Some(s.clone());
                    i += 2;
                }
                None => {
                    eprintln!("timeline-dump: --metric needs a substring");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("timeline-dump: unknown flag {flag}");
                std::process::exit(2);
            }
            p => {
                path = Some(p.to_string());
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: timeline-dump <file.tl> [--metric SUBSTR]");
        std::process::exit(2);
    };
    let tl = match load(Path::new(&path)) {
        Ok(DiffInput::Timeline(tl)) => tl,
        Ok(DiffInput::Artifact(_)) => {
            eprintln!("timeline-dump: {path} is a trace artifact; use trace-dump");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("timeline-dump: {path}: {e}");
            std::process::exit(2);
        }
    };

    let interval = tl.interval();
    let tick = tl.channel_index("timeline.tick");
    let span_s = match (tick, tl.rows()) {
        (Some(t), r) if r > 0 => {
            (tl.value(r - 1, t).saturating_sub(tl.value(0, t)) + 1) as f64
                * interval.as_secs_f64()
        }
        _ => 0.0,
    };
    println!(
        "timeline: {} channels × {} rows @ {} ns interval (~{:.3} s simulated)",
        tl.channels().len(),
        tl.rows(),
        interval.as_nanos(),
        span_s,
    );
    println!();

    // Sparklines: counters as per-row rates, gauges as levels. Constant
    // channels are compressed to one line each; wear channels render
    // below as the heatmap instead.
    let mut constant: Vec<&str> = Vec::new();
    println!("sparklines ({} cells max; counters shown as per-row deltas):", WIDTH);
    for (i, c) in tl.channels().iter().enumerate() {
        if c.name.starts_with("storage.segment_wear.") || c.name == "timeline.tick" {
            continue;
        }
        if let Some(f) = &filter {
            if !c.name.contains(f.as_str()) {
                continue;
            }
        }
        let (values, unit) = match c.kind {
            ChannelKind::Counter => (deltas(&tl, i), "Δ"),
            ChannelKind::Gauge => (
                (0..tl.rows()).map(|r| tl.gauge(r, i)).collect::<Vec<_>>(),
                "level",
            ),
        };
        let (line, lo, hi) = sparkline(&values);
        if lo == hi {
            constant.push(&c.name);
            continue;
        }
        println!("  {:<34} |{line}| {unit} {lo:.6e}..{hi:.6e}", c.name);
    }
    if !constant.is_empty() {
        println!("  ({} constant channels omitted)", constant.len());
    }
    println!();

    // Per-segment wear heatmap from final erase counts.
    let wear: Vec<(usize, u64)> = tl
        .channels()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.name.starts_with("storage.segment_wear."))
        .map(|(i, _)| (i, tl.final_value(i)))
        .collect();
    if !wear.is_empty() {
        let max = wear.iter().map(|&(_, v)| v).max().unwrap_or(0);
        let total: u64 = wear.iter().map(|&(_, v)| v).sum();
        println!(
            "segment wear heatmap ({} segments, {} erases total, max {}/segment, '@' = max):",
            wear.len(),
            total,
            max,
        );
        for row in wear.chunks(WIDTH) {
            let mut line = String::with_capacity(row.len());
            for &(_, v) in row {
                line.push(shade(v as f64, max as f64));
            }
            println!("  {line}");
        }
        println!();
    }

    // Cleaning cost over time: §3's erase-ahead argument says the
    // cleaner should keep free segments available ahead of writes; if it
    // falls behind, writers stall (gc_wait) and copy traffic (the GC
    // share of programs) climbs.
    let user = tl.channel_index("storage.user_flash_pages");
    let gc = tl.channel_index("storage.gc_flash_pages");
    let free = tl.channel_index("storage.free_segments");
    let wait = tl.channel_index("storage.gc_wait_ns");
    if let (Some(user), Some(gc)) = (user, gc) {
        let du = deltas(&tl, user);
        let dg = deltas(&tl, gc);
        let share: Vec<f64> = du
            .iter()
            .zip(&dg)
            .map(|(&u, &g)| if u + g > 0.0 { g / (u + g) } else { 0.0 })
            .collect();
        println!("cleaning cost over time:");
        let (line, lo, hi) = sparkline(&share);
        println!("  gc share of page programs    |{line}| {lo:.3}..{hi:.3}");
        if let Some(free) = free {
            let levels: Vec<f64> = tl.series(free).map(|v| v as f64).collect();
            let (line, lo, hi) = sparkline(&levels);
            println!("  free segments (erase-ahead)  |{line}| {lo:.0}..{hi:.0}");
        }
        if let Some(wait) = wait {
            let (line, lo, hi) = sparkline(&deltas(&tl, wait));
            println!("  writer stall ns per row      |{line}| {lo:.0}..{hi:.0}");
        }
        let programs_user: f64 = du.iter().sum();
        let programs_gc: f64 = dg.iter().sum();
        let amp = if programs_user > 0.0 {
            (programs_user + programs_gc) / programs_user
        } else {
            1.0
        };
        println!(
            "  totals: {programs_user:.0} user pages + {programs_gc:.0} gc copies = {amp:.3}x write amplification"
        );
    }
}
