//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ssmc-bench --bin experiments -- all
//! cargo run --release -p ssmc-bench --bin experiments -- t1 f2 f4
//! cargo run --release -p ssmc-bench --bin experiments -- --list
//! cargo run --release -p ssmc-bench --bin experiments -- all --json results/
//! cargo run --release -p ssmc-bench --bin experiments -- all --threads 4
//! cargo run --release -p ssmc-bench --bin experiments -- t2 --cache-policy lru_k
//! cargo run --release -p ssmc-bench --bin experiments -- --trace-out trace.json
//! cargo run --release -p ssmc-bench --bin experiments -- --timeline-out run.tl
//! ```

use ssmc_bench::experiments;
use ssmc_sim::report::ToReport;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = experiments();

    if args.first().map(String::as_str) == Some("trace-compile") {
        trace_compile(&args[1..]);
        return;
    }

    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            });
        ssmc_sim::set_threads(n);
    }

    if let Some(i) = args.iter().position(|a| a == "--cache-policy") {
        let policy = args
            .get(i + 1)
            .and_then(|v| ssmc_baseline::CachePolicy::parse(v))
            .unwrap_or_else(|| {
                eprintln!("--cache-policy needs one of: lru, lru_k");
                std::process::exit(2);
            });
        ssmc_bench::baseline_policy::set_cache_policy(policy);
    }

    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| {
                    eprintln!("--trace-out needs a path");
                    std::process::exit(2);
                })
        });
    let trace_ops = args
        .iter()
        .position(|a| a == "--trace-ops")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("--trace-ops needs a positive integer");
                    std::process::exit(2);
                })
        })
        .unwrap_or(25_000);

    if let Some(path) = &trace_out {
        eprintln!(">>> traced replay: bsd, {trace_ops} ops");
        let start = std::time::Instant::now();
        let artifact = ssmc_bench::obs_trace::traced_replay(ssmc_trace::Workload::Bsd, trace_ops);
        eprintln!("    ({:.1} s)", start.elapsed().as_secs_f64());
        let mut f = std::fs::File::create(path).expect("create trace-out file");
        f.write_all(artifact.to_report().encode_pretty().as_bytes())
            .expect("write trace-out file");
        eprintln!("    wrote {}", path.display());
    }

    let timeline_out = args
        .iter()
        .position(|a| a == "--timeline-out")
        .map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| {
                    eprintln!("--timeline-out needs a path");
                    std::process::exit(2);
                })
        });
    let sample_interval = args
        .iter()
        .position(|a| a == "--sample-interval")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map(ssmc_sim::SimDuration::from_millis)
                .unwrap_or_else(|| {
                    eprintln!("--sample-interval needs a positive integer (simulated ms)");
                    std::process::exit(2);
                })
        })
        .unwrap_or_else(ssmc_bench::obs_trace::default_sample_interval);

    if let Some(path) = &timeline_out {
        eprintln!(
            ">>> timeline replay: bsd, {trace_ops} ops @ {} ms samples",
            sample_interval.as_millis_f64()
        );
        let start = std::time::Instant::now();
        let summary =
            ssmc_bench::obs_trace::timeline_replay(
                ssmc_trace::Workload::Bsd,
                trace_ops,
                sample_interval,
                path,
            )
            .expect("timeline replay");
        eprintln!("    ({:.1} s)", start.elapsed().as_secs_f64());
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        eprintln!(
            "    wrote {} ({} rows x {} channels, {bytes} bytes)",
            path.display(),
            summary.rows,
            summary.channels,
        );
    }

    if (args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h"))
        && trace_out.is_none()
        && timeline_out.is_none()
    {
        eprintln!(
            "usage: experiments [--list] [--json DIR] [--threads N] \
             [--cache-policy lru|lru_k] [--trace-out PATH [--trace-ops N]] \
             [--timeline-out PATH [--sample-interval MS]] \
             <ids...|all>"
        );
        eprintln!(
            "       experiments trace-compile --out PATH \
             [--workload NAME] [--ops N]"
        );
        eprintln!("experiments:");
        for e in &registry {
            eprintln!("  {:4}  {}", e.id, e.title);
        }
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for e in &registry {
            println!("{:4}  {}", e.id, e.title);
        }
        return;
    }

    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }

    let want_all = args.iter().any(|a| a == "all");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let mut ran = 0;
    for e in &registry {
        if !want_all && !wanted.contains(&e.id) {
            continue;
        }
        eprintln!(">>> running {} — {}", e.id, e.title);
        let start = std::time::Instant::now();
        let tables = (e.run)();
        eprintln!("    ({:.1} s)", start.elapsed().as_secs_f64());
        for t in &tables {
            println!("{}", t.render());
        }
        if let Some(dir) = &json_dir {
            let path = dir.join(format!("{}.json", e.id));
            let mut f = std::fs::File::create(&path).expect("create json");
            let json = tables.to_report().encode_pretty();
            f.write_all(json.as_bytes()).expect("write json");
            eprintln!("    wrote {}", path.display());
        }
        ran += 1;
    }
    if ran == 0 && trace_out.is_none() && timeline_out.is_none() {
        eprintln!("no matching experiments; try --list");
        std::process::exit(2);
    }
}

/// `experiments trace-compile --out PATH [--workload NAME] [--ops N]`
///
/// Compiles a generated workload straight to a fixed-width `.ops` stream
/// on disk, then reopens it and dumps the header as a sanity check.
fn trace_compile(args: &[String]) {
    use ssmc_trace::io::{OpStreamFileReader, OpStreamWriter};
    use ssmc_trace::{GeneratorConfig, Workload};

    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .map(|i| {
                args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                })
            })
    };
    let workload = match flag("--workload") {
        None => Workload::Bsd,
        Some(v) => Workload::parse(&v).unwrap_or_else(|| {
            eprintln!(
                "unknown workload {v:?}; one of: {}",
                Workload::ALL.map(|w| w.name()).join(", ")
            );
            std::process::exit(2);
        }),
    };
    let ops = match flag("--ops") {
        None => 25_000usize,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--ops needs a positive integer");
            std::process::exit(2);
        }),
    };
    let out = flag("--out").map(std::path::PathBuf::from).unwrap_or_else(|| {
        eprintln!("trace-compile needs --out PATH");
        std::process::exit(2);
    });

    eprintln!(">>> trace-compile: {workload}, {ops} ops -> {}", out.display());
    let start = std::time::Instant::now();
    let cfg = GeneratorConfig::new(workload)
        .with_ops(ops)
        .with_max_live_bytes(4 << 20);
    let mut w = OpStreamWriter::create(&out, &workload.to_string())
        .expect("create op stream");
    let written = cfg.generate_into(&mut w).expect("compile op stream");
    w.finish().expect("finish op stream");
    eprintln!("    ({:.1} s)", start.elapsed().as_secs_f64());

    let r = OpStreamFileReader::open(&out).expect("reopen op stream");
    let h = r.header();
    assert_eq!(h.records, written, "header record count matches writer");
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!("name:    {}", h.name);
    println!("version: {}", h.version);
    println!("records: {}", h.records);
    println!("files:   {}", h.files);
    println!("bytes:   {bytes}");
}
