//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ssmc-bench --bin experiments -- all
//! cargo run --release -p ssmc-bench --bin experiments -- t1 f2 f4
//! cargo run --release -p ssmc-bench --bin experiments -- --list
//! cargo run --release -p ssmc-bench --bin experiments -- all --json results/
//! cargo run --release -p ssmc-bench --bin experiments -- all --threads 4
//! cargo run --release -p ssmc-bench --bin experiments -- t2 --cache-policy lru_k
//! cargo run --release -p ssmc-bench --bin experiments -- --trace-out trace.json
//! cargo run --release -p ssmc-bench --bin experiments -- --timeline-out run.tl
//! ```

use ssmc_bench::experiments;
use ssmc_sim::report::ToReport;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = experiments();

    if args.first().map(String::as_str) == Some("trace-compile") {
        trace_compile(&args[1..]);
        return;
    }

    if args.first().map(String::as_str) == Some("crash-torture") {
        crash_torture(&args[1..]);
        return;
    }

    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            });
        ssmc_sim::set_threads(n);
    }

    if let Some(i) = args.iter().position(|a| a == "--cache-policy") {
        let policy = args
            .get(i + 1)
            .and_then(|v| ssmc_baseline::CachePolicy::parse(v))
            .unwrap_or_else(|| {
                eprintln!("--cache-policy needs one of: lru, lru_k");
                std::process::exit(2);
            });
        ssmc_bench::baseline_policy::set_cache_policy(policy);
    }

    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| {
                    eprintln!("--trace-out needs a path");
                    std::process::exit(2);
                })
        });
    let trace_ops = args
        .iter()
        .position(|a| a == "--trace-ops")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("--trace-ops needs a positive integer");
                    std::process::exit(2);
                })
        })
        .unwrap_or(25_000);

    if let Some(path) = &trace_out {
        eprintln!(">>> traced replay: bsd, {trace_ops} ops");
        let start = std::time::Instant::now();
        let artifact = ssmc_bench::obs_trace::traced_replay(ssmc_trace::Workload::Bsd, trace_ops);
        eprintln!("    ({:.1} s)", start.elapsed().as_secs_f64());
        let mut f = std::fs::File::create(path).expect("create trace-out file");
        f.write_all(artifact.to_report().encode_pretty().as_bytes())
            .expect("write trace-out file");
        eprintln!("    wrote {}", path.display());
    }

    let timeline_out = args
        .iter()
        .position(|a| a == "--timeline-out")
        .map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| {
                    eprintln!("--timeline-out needs a path");
                    std::process::exit(2);
                })
        });
    let sample_interval = args
        .iter()
        .position(|a| a == "--sample-interval")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map(ssmc_sim::SimDuration::from_millis)
                .unwrap_or_else(|| {
                    eprintln!("--sample-interval needs a positive integer (simulated ms)");
                    std::process::exit(2);
                })
        })
        .unwrap_or_else(ssmc_bench::obs_trace::default_sample_interval);

    if let Some(path) = &timeline_out {
        eprintln!(
            ">>> timeline replay: bsd, {trace_ops} ops @ {} ms samples",
            sample_interval.as_millis_f64()
        );
        let start = std::time::Instant::now();
        let summary =
            ssmc_bench::obs_trace::timeline_replay(
                ssmc_trace::Workload::Bsd,
                trace_ops,
                sample_interval,
                path,
            )
            .expect("timeline replay");
        eprintln!("    ({:.1} s)", start.elapsed().as_secs_f64());
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        eprintln!(
            "    wrote {} ({} rows x {} channels, {bytes} bytes)",
            path.display(),
            summary.rows,
            summary.channels,
        );
    }

    if (args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h"))
        && trace_out.is_none()
        && timeline_out.is_none()
    {
        eprintln!(
            "usage: experiments [--list] [--json DIR] [--threads N] \
             [--cache-policy lru|lru_k] [--trace-out PATH [--trace-ops N]] \
             [--timeline-out PATH [--sample-interval MS]] \
             <ids...|all>"
        );
        eprintln!(
            "       experiments trace-compile --out PATH \
             [--workload NAME] [--ops N]"
        );
        eprintln!(
            "       experiments crash-torture [--workload NAME] [--ops N] \
             [--seed N] [--tear clean|prefix|stripe|both|all] \
             [--threads N] [--json PATH]"
        );
        eprintln!("experiments:");
        for e in &registry {
            eprintln!("  {:4}  {}", e.id, e.title);
        }
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for e in &registry {
            println!("{:4}  {}", e.id, e.title);
        }
        return;
    }

    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }

    let want_all = args.iter().any(|a| a == "all");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let mut ran = 0;
    for e in &registry {
        if !want_all && !wanted.contains(&e.id) {
            continue;
        }
        eprintln!(">>> running {} — {}", e.id, e.title);
        let start = std::time::Instant::now();
        let tables = (e.run)();
        eprintln!("    ({:.1} s)", start.elapsed().as_secs_f64());
        for t in &tables {
            println!("{}", t.render());
        }
        if let Some(dir) = &json_dir {
            let path = dir.join(format!("{}.json", e.id));
            let mut f = std::fs::File::create(&path).expect("create json");
            let json = tables.to_report().encode_pretty();
            f.write_all(json.as_bytes()).expect("write json");
            eprintln!("    wrote {}", path.display());
        }
        ran += 1;
    }
    if ran == 0 && trace_out.is_none() && timeline_out.is_none() {
        eprintln!("no matching experiments; try --list");
        std::process::exit(2);
    }
}

/// `experiments trace-compile --out PATH [--workload NAME] [--ops N]`
///
/// Compiles a generated workload straight to a fixed-width `.ops` stream
/// on disk, then reopens it and dumps the header as a sanity check.
fn trace_compile(args: &[String]) {
    use ssmc_trace::io::{OpStreamFileReader, OpStreamWriter};
    use ssmc_trace::{GeneratorConfig, Workload};

    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .map(|i| {
                args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                })
            })
    };
    let workload = match flag("--workload") {
        None => Workload::Bsd,
        Some(v) => Workload::parse(&v).unwrap_or_else(|| {
            eprintln!(
                "unknown workload {v:?}; one of: {}",
                Workload::ALL.map(|w| w.name()).join(", ")
            );
            std::process::exit(2);
        }),
    };
    let ops = match flag("--ops") {
        None => 25_000usize,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--ops needs a positive integer");
            std::process::exit(2);
        }),
    };
    let out = flag("--out").map(std::path::PathBuf::from).unwrap_or_else(|| {
        eprintln!("trace-compile needs --out PATH");
        std::process::exit(2);
    });

    eprintln!(">>> trace-compile: {workload}, {ops} ops -> {}", out.display());
    let start = std::time::Instant::now();
    let cfg = GeneratorConfig::new(workload)
        .with_ops(ops)
        .with_max_live_bytes(4 << 20);
    let mut w = OpStreamWriter::create(&out, &workload.to_string())
        .expect("create op stream");
    let written = cfg.generate_into(&mut w).expect("compile op stream");
    w.finish().expect("finish op stream");
    eprintln!("    ({:.1} s)", start.elapsed().as_secs_f64());

    let r = OpStreamFileReader::open(&out).expect("reopen op stream");
    let h = r.header();
    assert_eq!(h.records, written, "header record count matches writer");
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!("name:    {}", h.name);
    println!("version: {}", h.version);
    println!("records: {}", h.records);
    println!("files:   {}", h.files);
    println!("bytes:   {bytes}");
}

/// `experiments crash-torture [--workload NAME] [--ops N] [--seed N]
/// [--tear clean|prefix|stripe|both|all] [--threads N] [--json PATH]`
///
/// Generates a workload trace, projects it to a page-op stream through
/// the trace oracle, counts every flash program/erase boundary in a
/// clean pre-pass, then power-cuts the replay at each boundary with the
/// requested tear modes, recovering and differentially checking
/// durability after every cut (see `ssmc_storage::torture`).
///
/// Cut runs are pure functions of `(ops, seed, cut, tear)` and are
/// sharded across threads with `parallel_sweep`, which returns results
/// in input order — stdout and `--json` output are bit-identical at any
/// `--threads` value. Exits non-zero if any cut produced a violation.
fn crash_torture(args: &[String]) {
    use ssmc_device::{FlashSpec, TearMode};
    use ssmc_sim::obs::MetricsRegistry;
    use ssmc_sim::report::Value;
    use ssmc_sim::SimDuration;
    use ssmc_storage::torture::{self, TortureOp, TortureSummary};
    use ssmc_storage::StorageConfig;
    use ssmc_trace::{project, GeneratorConfig, OracleConfig, PageOpKind, Workload};

    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .map(|i| {
                args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                })
            })
    };
    let workload = match flag("--workload") {
        None => Workload::Bsd,
        Some(v) => Workload::parse(&v).unwrap_or_else(|| {
            eprintln!(
                "unknown workload {v:?}; one of: {}",
                Workload::ALL.map(|w| w.name()).join(", ")
            );
            std::process::exit(2);
        }),
    };
    let ops_n: usize = match flag("--ops") {
        None => 2_000,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--ops needs a positive integer");
            std::process::exit(2);
        }),
    };
    let seed: u64 = match flag("--seed") {
        None => 0x0C0F_FEE5,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--seed needs an unsigned integer");
            std::process::exit(2);
        }),
    };
    let tears: Vec<TearMode> = match flag("--tear").as_deref() {
        // "both" = both torn-write modes; "all" adds the untorn cut.
        None | Some("both") => vec![TearMode::Prefix, TearMode::Stripe],
        Some("all") => vec![TearMode::Clean, TearMode::Prefix, TearMode::Stripe],
        Some("clean") => vec![TearMode::Clean],
        Some("prefix") => vec![TearMode::Prefix],
        Some("stripe") => vec![TearMode::Stripe],
        Some(v) => {
            eprintln!("unknown tear mode {v:?}; one of: clean, prefix, stripe, both, all");
            std::process::exit(2);
        }
    };
    if let Some(v) = flag("--threads") {
        let n: usize = v.parse().unwrap_or_else(|_| {
            eprintln!("--threads needs a positive integer");
            std::process::exit(2);
        });
        ssmc_sim::set_threads(n);
    }
    let json_out = flag("--json").map(std::path::PathBuf::from);

    // Fixed page-op stream: generate, project through the oracle.
    let trace = GeneratorConfig::new(workload)
        .with_ops(ops_n)
        .with_seed(seed)
        .with_max_live_bytes(128 << 10)
        .generate();
    let page_ops = project(&trace, &OracleConfig::default());
    let ops: Vec<TortureOp> = page_ops
        .iter()
        .map(|o| match o.kind {
            PageOpKind::Write => TortureOp::Write { page: o.page },
            PageOpKind::Free => TortureOp::Free { page: o.page },
            PageOpKind::Sync => TortureOp::Sync,
            PageOpKind::Tick => TortureOp::Tick,
        })
        .collect();

    // Small flash so the window still exercises GC and checkpointing:
    // 4 banks x 16 blocks x 8 KiB = 1024 pages against <= 256 live.
    let cfg = StorageConfig {
        page_size: 512,
        dram_buffer_bytes: 16 << 10,
        flash: FlashSpec {
            banks: 4,
            blocks_per_bank: 16,
            block_bytes: 8 << 10,
            write_unit: 512,
            ..FlashSpec::default()
        },
        gc_trigger_segments: 4,
        gc_target_segments: 6,
        checkpoint_interval: SimDuration::from_secs(1),
        ..StorageConfig::default()
    };

    let boundaries = torture::count_boundaries(&cfg, &ops, seed).unwrap_or_else(|e| {
        eprintln!("clean pre-pass failed: {e:?}");
        std::process::exit(2);
    });
    eprintln!(
        ">>> crash-torture: {workload}, {} page ops, {boundaries} boundaries, {} tear mode(s), {} threads",
        ops.len(),
        tears.len(),
        ssmc_sim::threads(),
    );

    let items: Vec<(TearMode, u64)> = tears
        .iter()
        .flat_map(|&t| (1..=boundaries).map(move |c| (t, c)))
        .collect();
    let start = std::time::Instant::now();
    let reports =
        ssmc_sim::parallel_sweep(&items, |_, &(tear, cut)| torture::run_cut(&cfg, &ops, seed, cut, tear));
    eprintln!("    ({:.1} s)", start.elapsed().as_secs_f64());

    let mut total = TortureSummary::default();
    let mut tear_rows: Vec<Value> = Vec::new();
    for (ti, &tear) in tears.iter().enumerate() {
        let slice = &reports[ti * boundaries as usize..(ti + 1) * boundaries as usize];
        let mut summary = TortureSummary::default();
        let mut failed_cuts: Vec<Value> = Vec::new();
        for r in slice {
            summary.absorb(r);
            total.absorb(r);
            if !r.passed() {
                failed_cuts.push(Value::object(vec![
                    ("cut", Value::UInt(r.cut_at)),
                    (
                        "violations",
                        Value::Array(
                            r.violations
                                .iter()
                                .map(|v| Value::Str(v.to_string()))
                                .collect(),
                        ),
                    ),
                ]));
            }
        }
        println!(
            "tear={:<6} cuts={} failures={}",
            format!("{tear:?}").to_lowercase(),
            summary.cuts_total,
            summary.failures
        );
        for r in slice.iter().filter(|r| !r.passed()).take(8) {
            for v in &r.violations {
                eprintln!("    {tear:?} cut {}: {v}", r.cut_at);
            }
        }
        tear_rows.push(Value::object(vec![
            ("tear", Value::Str(format!("{tear:?}").to_lowercase())),
            ("cuts_total", Value::UInt(summary.cuts_total)),
            ("failures", Value::UInt(summary.failures)),
            ("failed_cuts", Value::Array(failed_cuts)),
        ]));
    }
    println!(
        "total cuts={} failures={}",
        total.cuts_total, total.failures
    );

    let mut reg = MetricsRegistry::new();
    total.publish(&mut reg);
    debug_assert_eq!(reg.counter_value("torture.cuts_total"), Some(total.cuts_total));

    if let Some(path) = &json_out {
        let report = Value::object(vec![
            ("workload", Value::Str(workload.to_string())),
            ("trace_ops", Value::UInt(ops_n as u64)),
            ("page_ops", Value::UInt(ops.len() as u64)),
            ("seed", Value::UInt(seed)),
            ("boundaries", Value::UInt(boundaries)),
            ("tears", Value::Array(tear_rows)),
            ("cuts_total", Value::UInt(total.cuts_total)),
            ("failures", Value::UInt(total.failures)),
        ]);
        let mut f = std::fs::File::create(path).expect("create json");
        f.write_all(report.encode_pretty().as_bytes())
            .expect("write json");
        eprintln!("    wrote {}", path.display());
    }

    if total.failures > 0 {
        std::process::exit(1);
    }
}
