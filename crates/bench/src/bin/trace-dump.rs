//! Renders a traced-replay artifact (`experiments --trace-out PATH`) as
//! human-readable tables: per-op-kind latency histograms, per-layer
//! totals, and the energy-attribution breakdown.
//!
//! ```text
//! cargo run --release -p ssmc-bench --bin trace-dump -- trace.json
//! ```

use ssmc_bench::obs_trace::TraceArtifact;
use ssmc_sim::obs::{EventKind, Layer, EVENT_KINDS, LAYERS};
use ssmc_sim::report::{FromReport, Value};
use ssmc_sim::{Histogram, Table};

/// Label for a bucket's inclusive upper bound. The top bucket ends at
/// `u64::MAX` — printing `2^64` (or a wrapped `0`) here would claim a
/// bound no `u64` latency can reach.
fn bucket_label(i: usize) -> String {
    let (_, hi) = Histogram::bucket_bounds(i);
    if hi == u64::MAX {
        "max".into()
    } else {
        format!("{hi}")
    }
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) if !p.starts_with("--") => p,
        _ => {
            eprintln!("usage: trace-dump <trace.json>");
            std::process::exit(2);
        }
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("trace-dump: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let value = Value::decode(&text).unwrap_or_else(|e| {
        eprintln!("trace-dump: {path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let artifact = TraceArtifact::from_report(&value).unwrap_or_else(|e| {
        eprintln!("trace-dump: {path} is not a trace artifact: {e}");
        std::process::exit(2);
    });

    let journal = &artifact.journal;
    println!(
        "trace: machine={} workload={} ops={} (journal: {} events retained, {} dropped, ring {})",
        artifact.machine,
        artifact.workload,
        artifact.ops,
        journal.events.len(),
        journal.dropped,
        journal.capacity,
    );
    println!();

    // Per-op-kind latency and volume, from the never-dropping aggregates.
    let mut kinds = Table::new(
        "span latency by kind (ns)",
        &[
            "kind", "layer", "count", "mean", "p50", "p99", "energy_j", "pages", "bytes",
        ],
    );
    for kind in EVENT_KINDS {
        let Some(row) = journal.aggregate(kind) else {
            continue;
        };
        let h = &row.agg.latency;
        kinds.row(vec![
            kind.name().into(),
            kind.layer().name().into(),
            row.agg.count.into(),
            h.mean().into(),
            h.quantile(0.5).into(),
            h.quantile(0.99).into(),
            row.agg.energy.as_joules().into(),
            row.agg.pages.into(),
            row.agg.bytes.into(),
        ]);
    }
    println!("{}", kinds.render());

    // The full latency distributions behind those quantiles: one line
    // per kind, non-empty buckets only, keyed by each bucket's inclusive
    // upper bound in ns (structural form — the same buckets obs-diff
    // compares).
    println!("latency distribution (count per bucket, keyed by upper bound ns):");
    for kind in EVENT_KINDS {
        let Some(row) = journal.aggregate(kind) else {
            continue;
        };
        let mut line = String::new();
        for (i, &c) in row.agg.latency.bucket_counts().iter().enumerate() {
            if c > 0 {
                line.push_str(&format!(" ..{}={c}", bucket_label(i)));
            }
        }
        println!("  {:<20}{line}", kind.name());
    }
    println!();

    // Per-layer totals.
    let mut layers = Table::new(
        "per-layer totals",
        &["layer", "spans", "latency_ms", "energy_j", "pages", "bytes"],
    );
    for layer in LAYERS {
        let (count, latency_ns, energy, pages, bytes) = journal.layer_totals(layer);
        if count == 0 {
            continue;
        }
        layers.row(vec![
            layer.name().into(),
            count.into(),
            (latency_ns as f64 / 1e6).into(),
            energy.as_joules().into(),
            pages.into(),
            bytes.into(),
        ]);
    }
    println!("{}", layers.render());

    // Energy attribution: device spans each carry their own device's
    // energy; machine root spans carry the whole-machine delta. Comparing
    // the two shows how much of each op's energy the devices explain
    // (the remainder is idle/refresh power charged between spans).
    let (_, _, machine_energy, _, _) = journal.layer_totals(Layer::Machine);
    let mut energy = Table::new(
        "energy attribution",
        &["source", "energy_j", "share_of_machine"],
    );
    let device_kinds = [
        EventKind::FlashRead,
        EventKind::FlashProgram,
        EventKind::FlashErase,
        EventKind::DiskSeek,
    ];
    let machine_j = machine_energy.as_joules();
    for kind in device_kinds {
        let Some(row) = journal.aggregate(kind) else {
            continue;
        };
        let j = row.agg.energy.as_joules();
        let share = if machine_j > 0.0 { j / machine_j } else { 0.0 };
        energy.row(vec![kind.name().into(), j.into(), share.into()]);
    }
    energy.row(vec![
        "machine total (root spans)".into(),
        machine_j.into(),
        1.0.into(),
    ]);
    println!("{}", energy.render());

    println!("registry: {} instruments", artifact.registry.len());
}
