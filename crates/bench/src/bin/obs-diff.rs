//! Compares two observability artifacts (`.tl` timelines or
//! `TraceArtifact` JSON, in any combination) and reports per-metric
//! drift. CI-friendly exit codes: 0 clean, 1 drift found, 2 usage or
//! I/O error.
//!
//! ```text
//! obs-diff <a.tl|a.json> <b.tl|b.json> [--rel-tol F] [--abs-tol F]
//! ```

use ssmc_bench::obs_diff::{diff, load, DiffOptions};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut i = 0;
    while i < args.len() {
        let tol = |name: &str| -> Option<f64> {
            let v = args.get(i + 1)?;
            match v.parse::<f64>() {
                Ok(t) if t >= 0.0 => Some(t),
                _ => {
                    eprintln!("obs-diff: {name} needs a non-negative number, got {v:?}");
                    None
                }
            }
        };
        match args[i].as_str() {
            "--rel-tol" => {
                let Some(t) = tol("--rel-tol") else {
                    return ExitCode::from(2);
                };
                opts.rel_tol = t;
                i += 2;
            }
            "--abs-tol" => {
                let Some(t) = tol("--abs-tol") else {
                    return ExitCode::from(2);
                };
                opts.abs_tol = t;
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("obs-diff: unknown flag {flag}");
                return ExitCode::from(2);
            }
            p => {
                paths.push(PathBuf::from(p));
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: obs-diff <a.tl|a.json> <b.tl|b.json> [--rel-tol F] [--abs-tol F]");
        return ExitCode::from(2);
    }

    let mut inputs = Vec::with_capacity(2);
    for p in &paths {
        match load(p) {
            Ok(input) => inputs.push(input),
            Err(e) => {
                eprintln!("obs-diff: {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
    }
    let report = diff(&inputs[0], &inputs[1], &opts);
    print!("{}", report.render());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
