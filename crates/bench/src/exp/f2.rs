//! F2 — §3.3 write buffering (the paper's headline number).
//!
//! Paper, citing Baker et al. [1]: "as little as one megabyte of
//! battery-backed RAM can reduce write traffic by 40 to 50%." We sweep the
//! DRAM write-buffer size under a BSD-like workload and report the flash
//! write-traffic reduction, then sweep the *data-lifetime* assumption the
//! number rests on (fraction of new data that dies young).

use ssmc_core::{run_trace, MachineConfig, MobileComputer};
use ssmc_sim::{parallel_sweep, Table};
use ssmc_trace::{GeneratorConfig, LifetimeModel, Trace, Workload};

fn machine_with_buffer(buffer_bytes: u64) -> MobileComputer {
    let mut cfg = MachineConfig::with_sizes("f2", 8 << 20, 24 << 20);
    cfg.write_buffer_bytes = Some(buffer_bytes);
    MobileComputer::new(cfg)
}

fn bsd_trace(short_fraction: f64) -> Trace {
    GeneratorConfig::new(Workload::Bsd)
        .with_ops(25_000)
        .with_max_live_bytes(4 << 20)
        .with_lifetime(LifetimeModel::default().with_short_fraction(short_fraction))
        .generate()
}

/// Runs F2.
pub fn run() -> Vec<Table> {
    let mut sweep = Table::new(
        "F2a: flash write traffic vs DRAM write-buffer size (BSD-like workload)",
        &[
            "buffer (KB)",
            "traffic reduction (%)",
            "overwrites absorbed",
            "deaths absorbed",
            "user pages to flash",
            "pages written",
        ],
    );
    let trace = bsd_trace(0.7);
    let buffer_kbs = [0u64, 64, 128, 256, 512, 1024, 2048, 4096];
    for row in parallel_sweep(&buffer_kbs, |_, &kb| {
        let mut m = machine_with_buffer(kb * 1024);
        let report = run_trace(&mut m, &trace);
        let sm = m.fs().storage().metrics();
        vec![
            kb.into(),
            (report.write_reduction * 100.0).into(),
            sm.overwrites_absorbed.into(),
            sm.deaths_absorbed.into(),
            sm.user_flash_pages.into(),
            sm.pages_written.into(),
        ]
    }) {
        sweep.row(row);
    }

    let mut sens = Table::new(
        "F2b: sensitivity to data lifetime (1 MB buffer; fraction of new data dying young)",
        &["short-lived fraction", "traffic reduction (%)"],
    );
    let fractions = [0.3, 0.5, 0.7, 0.9];
    for row in parallel_sweep(&fractions, |_, &frac| {
        let trace = bsd_trace(frac);
        let mut m = machine_with_buffer(1 << 20);
        let report = run_trace(&mut m, &trace);
        vec![frac.into(), (report.write_reduction * 100.0).into()]
    }) {
        sens.row(row);
    }
    vec![sweep, sens]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_megabyte_buffer_reaches_the_papers_band() {
        let trace = GeneratorConfig::new(Workload::Bsd)
            .with_ops(10_000)
            .with_max_live_bytes(4 << 20)
            .generate();
        let mut m = machine_with_buffer(1 << 20);
        let report = run_trace(&mut m, &trace);
        assert!(
            report.write_reduction >= 0.35,
            "reduction {} below the paper's 40-50% band",
            report.write_reduction
        );
    }

    #[test]
    fn reduction_grows_with_buffer_size() {
        let trace = GeneratorConfig::new(Workload::Bsd)
            .with_ops(8_000)
            .with_max_live_bytes(4 << 20)
            .generate();
        let mut small = machine_with_buffer(64 * 1024);
        let r_small = run_trace(&mut small, &trace).write_reduction;
        let mut big = machine_with_buffer(2 << 20);
        let r_big = run_trace(&mut big, &trace).write_reduction;
        assert!(r_big > r_small, "big {r_big} vs small {r_small}");
    }

    #[test]
    fn write_through_absorbs_nothing() {
        let trace = GeneratorConfig::new(Workload::Office)
            .with_ops(2_000)
            .with_max_live_bytes(1 << 20)
            .generate();
        let mut m = machine_with_buffer(0);
        let report = run_trace(&mut m, &trace);
        assert!(report.write_reduction.abs() < 1e-9);
    }
}
