//! A3 — ablation: logical page size.
//!
//! The storage manager's page is the unit of buffering, copy-on-write,
//! tombstoning, and flash programming. Small pages absorb fine-grained
//! record updates (the PDA workload) but cost more per-page bookkeeping;
//! big pages amplify sub-page writes through read-modify-write. The paper
//! fixes no page size; this ablation shows why 512 B is the sweet spot
//! for the 1993 workloads.

use ssmc_core::{run_trace, MachineConfig, MobileComputer};
use ssmc_sim::Table;
use ssmc_trace::{GeneratorConfig, Workload};

struct Outcome {
    reduction_pct: f64,
    flash_kb: u64,
    mean_data_us: f64,
    amplification: f64,
}

fn drive(page_size: u64, workload: Workload) -> Outcome {
    let mut cfg = MachineConfig::small_notebook();
    cfg.storage.page_size = page_size;
    cfg.vm.page_size = page_size;
    let mut m = MobileComputer::new(cfg);
    let trace = GeneratorConfig::new(workload)
        .with_ops(10_000)
        .with_max_live_bytes(2 << 20)
        .generate();
    let report = run_trace(&mut m, &trace);
    assert_eq!(report.replay.errors, 0, "page size {page_size} errored");
    let sm = m.fs().storage().metrics();
    Outcome {
        reduction_pct: report.write_reduction * 100.0,
        flash_kb: sm.user_flash_pages * page_size / 1024,
        mean_data_us: report.replay.mean_data_latency().as_micros_f64(),
        amplification: report.write_amplification,
    }
}

/// Runs A3.
pub fn run() -> Vec<Table> {
    let mut tables = Vec::new();
    for workload in [Workload::Office, Workload::Bsd] {
        let mut t = Table::new(
            format!("A3: logical page size — {workload} workload"),
            &[
                "page size (B)",
                "traffic reduction (%)",
                "flash written (KB)",
                "mean data op (us)",
                "write amplification",
            ],
        );
        for page in [512u64, 1024, 2048, 4096] {
            let o = drive(page, workload);
            t.row(vec![
                page.into(),
                o.reduction_pct.into(),
                o.flash_kb.into(),
                o.mean_data_us.into(),
                o.amplification.into(),
            ]);
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pages_write_less_flash_for_record_updates() {
        let small = drive(512, Workload::Office);
        let big = drive(4096, Workload::Office);
        assert!(
            small.flash_kb < big.flash_kb,
            "512 B wrote {} KB, 4 KB wrote {} KB",
            small.flash_kb,
            big.flash_kb
        );
    }
}
