//! F5 — cleaning cost vs utilisation (the LFS curve, ref [11]).
//!
//! The paper adopts LFS-style cleaning; its cost structure is the classic
//! Rosenblum/Ousterhout result: as the live fraction of the log grows,
//! every reclaimed segment requires copying more live data, and write
//! amplification explodes toward full utilisation. Cost-benefit victim
//! selection beats greedy under hot/cold skew by cleaning cold segments
//! early.

use ssmc_device::FlashSpec;
use ssmc_sim::{parallel_sweep, Clock, SimDuration, Table};
use ssmc_storage::{GcPolicy, StorageConfig, StorageManager};

fn steady_state_amplification(utilization: f64, gc: GcPolicy, skewed: bool) -> f64 {
    let clock = Clock::shared();
    let cfg = StorageConfig {
        page_size: 512,
        dram_buffer_bytes: 8 * 512,
        flash: FlashSpec {
            block_bytes: 16 * 1024,
            write_unit: 512,
            ..FlashSpec::default()
        }
        .with_capacity(2 << 20)
        .with_banks(2),
        gc,
        wear_leveling: ssmc_storage::WearLeveling::None,
        max_utilization: 0.96,
        gc_trigger_segments: 3,
        gc_target_segments: 5,
        checkpointing: false,
        ..StorageConfig::default()
    };
    let mut sm = StorageManager::new(cfg, clock.clone());
    let live_pages = (sm.page_capacity() as f64 * utilization / 0.96) as u64;
    let data = vec![0u8; 512];
    for p in 0..live_pages {
        sm.write_page(p, &data).expect("fill");
        if p % 512 == 0 {
            sm.sync().expect("sync");
        }
    }
    sm.sync().expect("sync");
    // Warm-up churn so the log reaches steady state.
    let mut rng = ssmc_sim::SimRng::seed_from_u64(3);
    let touch = |sm: &mut StorageManager, rng: &mut ssmc_sim::SimRng| {
        let page = if skewed && rng.chance(0.9) {
            rng.below((live_pages / 10).max(1))
        } else {
            rng.below(live_pages)
        };
        sm.write_page(page, &data).expect("update");
    };
    for i in 0..6_000u64 {
        touch(&mut sm, &mut rng);
        clock.advance(SimDuration::from_millis(5));
        if i % 32 == 0 {
            sm.sync().expect("sync");
            sm.tick().expect("tick");
        }
    }
    sm.sync().expect("sync");
    // Measured phase.
    let before_user = sm.metrics().user_flash_pages;
    let before_gc = sm.metrics().gc_flash_pages;
    for i in 0..8_000u64 {
        touch(&mut sm, &mut rng);
        clock.advance(SimDuration::from_millis(5));
        if i % 32 == 0 {
            sm.sync().expect("sync");
            sm.tick().expect("tick");
        }
    }
    sm.sync().expect("sync");
    let d_user = (sm.metrics().user_flash_pages - before_user).max(1);
    let d_gc = sm.metrics().gc_flash_pages - before_gc;
    (d_user + d_gc) as f64 / d_user as f64
}

/// Runs F5.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "F5: steady-state write amplification vs log utilisation",
        &[
            "utilisation",
            "greedy (uniform)",
            "cost-benefit (uniform)",
            "greedy (hot/cold)",
            "cost-benefit (hot/cold)",
        ],
    );
    // The full 5×4 grid of independent runs, flattened onto the sweep
    // pool, then regrouped one row per utilisation.
    let utilizations = [0.2, 0.4, 0.6, 0.75, 0.9];
    let configs = [
        (GcPolicy::Greedy, false),
        (GcPolicy::CostBenefit, false),
        (GcPolicy::Greedy, true),
        (GcPolicy::CostBenefit, true),
    ];
    let grid: Vec<(f64, GcPolicy, bool)> = utilizations
        .iter()
        .flat_map(|&u| configs.iter().map(move |&(gc, skewed)| (u, gc, skewed)))
        .collect();
    let amps = parallel_sweep(&grid, |_, &(u, gc, skewed)| {
        steady_state_amplification(u, gc, skewed)
    });
    for (row_idx, &u) in utilizations.iter().enumerate() {
        let base = row_idx * configs.len();
        t.row(vec![
            u.into(),
            amps[base].into(),
            amps[base + 1].into(),
            amps[base + 2].into(),
            amps[base + 3].into(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_explodes_toward_full_utilisation() {
        let low = steady_state_amplification(0.2, GcPolicy::Greedy, false);
        let high = steady_state_amplification(0.9, GcPolicy::Greedy, false);
        assert!(low < 1.5, "low-utilisation amp {low}");
        assert!(high > low + 0.5, "high {high} vs low {low}");
    }

    #[test]
    fn cost_benefit_wins_under_skew_at_high_utilisation() {
        let greedy = steady_state_amplification(0.85, GcPolicy::Greedy, true);
        let cb = steady_state_amplification(0.85, GcPolicy::CostBenefit, true);
        assert!(
            cb <= greedy * 1.05,
            "cost-benefit {cb} should not lose to greedy {greedy}"
        );
    }
}
