//! F7 — §4 sizing DRAM and flash.
//!
//! Paper: "How should a system apportion its storage capacity between the
//! two technologies? ... The answer depends on the workload." For a fixed
//! 1993 budget we sweep the DRAM share and run three workloads with very
//! different writable working sets; the preferred split moves with the
//! workload, and over-buying DRAM starves the permanent-data repository
//! (infeasible points).

use ssmc_core::{sweep_sizing, MachineConfig, SizingSpec};
use ssmc_sim::{parallel_sweep, Table};
use ssmc_trace::{GeneratorConfig, Workload};

/// Runs F7. The three workload sweeps are independent and run on the
/// shared [`parallel_sweep`] pool (each sweep further parallelises over
/// its fractions).
pub fn run() -> Vec<Table> {
    let workloads = [Workload::Office, Workload::Bsd, Workload::Database];
    let sweeps = parallel_sweep(&workloads, |_, &workload| {
        let trace = GeneratorConfig::new(workload)
            .with_ops(8_000)
            .with_max_live_bytes(3 << 20)
            .generate();
        let spec = SizingSpec {
            budget_dollars: 1_000.0,
            dram_fractions: vec![0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9],
            base: MachineConfig::small_notebook(),
            ..SizingSpec::default()
        };
        sweep_sizing(&spec, &trace)
    });
    let mut tables = Vec::new();
    for (workload, points) in workloads.into_iter().zip(sweeps) {
        let mut t = Table::new(
            format!("F7: $1000 split between DRAM and flash — {workload} workload"),
            &[
                "DRAM share",
                "DRAM (MB)",
                "flash (MB)",
                "feasible",
                "mean data op (us)",
                "energy (J)",
                "write reduction (%)",
                "flash life (years)",
            ],
        );
        for p in points {
            t.row(vec![
                p.dram_fraction.into(),
                p.dram_mb.into(),
                p.flash_mb.into(),
                if p.feasible { "yes" } else { "NO" }.into(),
                p.mean_latency_us.into(),
                p.energy_joules.into(),
                (p.write_reduction * 100.0).into(),
                match p.lifetime_years {
                    Some(y) => y.into(),
                    None => "-".into(),
                },
            ]);
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmc_core::SizingPoint;

    fn best_feasible(points: &[SizingPoint]) -> Option<&SizingPoint> {
        points.iter().filter(|p| p.feasible).min_by(|a, b| {
            a.mean_latency_us
                .partial_cmp(&b.mean_latency_us)
                .expect("finite")
        })
    }

    #[test]
    fn extreme_dram_share_starves_flash_for_data_heavy_workloads() {
        let trace = GeneratorConfig::new(Workload::Bsd)
            .with_ops(6_000)
            .with_max_live_bytes(4 << 20)
            .generate();
        let spec = SizingSpec {
            budget_dollars: 500.0,
            dram_fractions: vec![0.15, 0.5, 0.95],
            base: MachineConfig::small_notebook(),
            ..SizingSpec::default()
        };
        let points = sweep_sizing(&spec, &trace);
        assert!(points[0].feasible, "flash-heavy point runs");
        assert!(!points[2].feasible, "95% DRAM leaves too little flash");
        assert!(best_feasible(&points).is_some());
    }
}
