//! One module per experiment. See the crate docs and DESIGN.md §6.

pub mod a1;
pub mod a2;
pub mod a3;
pub mod f1;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod f7;
pub mod f8;
pub mod t1;
pub mod t2;
pub mod t3;
