//! A2 — ablation: checkpointing.
//!
//! The checkpoint ping-pong area trades steady-state flash traffic (map
//! snapshots) for bounded recovery scans after battery death. This
//! ablation measures both sides across checkpoint-interval settings.

use ssmc_core::{MachineConfig, MobileComputer};
use ssmc_sim::Table;
use ssmc_trace::{replay, GeneratorConfig, Workload};

struct Outcome {
    ckpt_pages: u64,
    ckpt_block_erases: u64,
    recovery_ms: f64,
    recovered: u64,
}

fn drive(checkpointing: bool) -> Outcome {
    let mut cfg = MachineConfig::small_notebook();
    cfg.storage.checkpointing = checkpointing;
    let mut m = MobileComputer::new(cfg);
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(12_000)
        .with_max_live_bytes(2 << 20)
        .generate();
    let clock = m.clock().clone();
    let _ = replay(&trace, &mut m, &clock);
    let ckpt_pages = m.fs().storage().metrics().checkpoint_flash_pages;
    let flash = m.fs().storage().flash();
    let ckpt_block_erases =
        flash.erase_count(ssmc_device::BlockId(0)) + flash.erase_count(ssmc_device::BlockId(1));
    m.battery_failure();
    let (report, _) = m.replace_battery_and_recover().expect("recover");
    Outcome {
        ckpt_pages,
        ckpt_block_erases,
        recovery_ms: report.duration.as_millis_f64(),
        recovered: report.recovered_pages,
    }
}

/// Runs A2.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "A2: checkpointing — steady-state overhead vs recovery time (BSD, ~10 min)",
        &[
            "checkpointing",
            "checkpoint pages written",
            "checkpoint-block erases",
            "recovery (ms)",
            "pages recovered",
        ],
    );
    for on in [true, false] {
        let o = drive(on);
        t.row(vec![
            if on { "every 60 s" } else { "off" }.into(),
            o.ckpt_pages.into(),
            o.ckpt_block_erases.into(),
            o.recovery_ms.into(),
            o.recovered.into(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpointing_trades_write_overhead_for_recovery_speed() {
        let with = drive(true);
        let without = drive(false);
        assert!(with.ckpt_pages > 0, "checkpoints were written");
        assert_eq!(without.ckpt_pages, 0);
        assert!(
            with.recovery_ms < without.recovery_ms,
            "with {} ms vs without {} ms",
            with.recovery_ms,
            without.recovery_ms
        );
        // Both recover the same durable state.
        assert_eq!(with.recovered, without.recovered);
    }
}
