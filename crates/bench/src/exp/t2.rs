//! T2 — §3.1 file-system comparison.
//!
//! Paper: with storage directly addressable, "many traditional policies
//! and mechanisms do not apply" — no seek-aware clustering, no indirect
//! blocks, no buffer cache — and the file system can be memory-resident.
//! We run identical operations and identical traces on the
//! memory-resident FS (DRAM + flash) and on the conventional FFS-like
//! baseline (cache + mobile disk), and report latency and energy.

use ssmc_baseline::BaselineConfig;
use ssmc_core::{DiskComputer, MachineConfig, MobileComputer};
use ssmc_device::BatterySpec;
use ssmc_sim::Table;
use ssmc_trace::{replay, GeneratorConfig, Workload};

const N: u64 = 200;

struct Micro {
    create_us: f64,
    write4k_us: f64,
    over512_us: f64,
    read4k_warm_us: f64,
    read4k_cold_us: f64,
    delete_us: f64,
    energy_mj_per_op: f64,
}

fn micro_solid() -> Micro {
    let mut m = MobileComputer::new(MachineConfig::small_notebook());
    let clock = m.clock().clone();
    let mean = |f: &mut dyn FnMut(u64)| -> f64 {
        let t0 = clock.now();
        for i in 0..N {
            f(i);
        }
        clock.now().since(t0).as_micros_f64() / N as f64
    };
    let data4k = vec![7u8; 4096];
    let data512 = vec![9u8; 512];
    let mut fds = Vec::new();
    let create = mean(&mut |i| {
        let fd = m.fs().create(&format!("/f{i}")).expect("create");
        fds.push(fd);
    });
    let write4k = mean(&mut |i| {
        m.fs().write(fds[i as usize], 0, &data4k).expect("write");
    });
    let over512 = mean(&mut |i| {
        m.fs()
            .write(fds[i as usize], 512, &data512)
            .expect("overwrite");
    });
    let mut buf = vec![0u8; 4096];
    let warm = mean(&mut |i| {
        m.fs().read(fds[i as usize], 0, &mut buf).expect("read");
    });
    // Cold: force everything to flash, then read (no cache to warm in this
    // design — "cold" and "warm" differ only by DRAM-dirty vs flash).
    // Let the asynchronous program burst drain first so the cold reads
    // measure flash access, not queueing behind the flush.
    m.fs().sync().expect("sync");
    clock.advance(ssmc_sim::SimDuration::from_secs(30));
    m.fs().tick().expect("tick");
    let cold = mean(&mut |i| {
        m.fs().read(fds[i as usize], 0, &mut buf).expect("read");
    });
    let delete = mean(&mut |i| {
        m.fs().unlink(&format!("/f{i}")).expect("unlink");
    });
    let ops = 6.0 * N as f64;
    Micro {
        create_us: create,
        write4k_us: write4k,
        over512_us: over512,
        read4k_warm_us: warm,
        read4k_cold_us: cold,
        delete_us: delete,
        energy_mj_per_op: m.total_energy().as_joules() * 1e3 / ops,
    }
}

fn micro_disk() -> Micro {
    let mut m = DiskComputer::new(
        BaselineConfig {
            spin_down: None,
            ..crate::baseline_policy::baseline_config()
        },
        BatterySpec::default(),
    );
    let clock = m.clock().clone();
    let mean = |m: &mut DiskComputer, f: &mut dyn FnMut(&mut DiskComputer, u64)| -> f64 {
        let t0 = clock.now();
        for i in 0..N {
            f(m, i);
        }
        clock.now().since(t0).as_micros_f64() / N as f64
    };
    let create = mean(&mut m, &mut |m, i| {
        m.fs().create(i).expect("create");
    });
    let write4k = mean(&mut m, &mut |m, i| {
        m.fs().write(i, 0, 4096).expect("write");
    });
    let over512 = mean(&mut m, &mut |m, i| {
        m.fs().write(i, 512, 512).expect("overwrite");
    });
    let warm = mean(&mut m, &mut |m, i| {
        m.fs().read(i, 0, 4096).expect("read");
    });
    // Cold: flush, then evict the cache by streaming through a big file.
    m.fs().flush_all();
    m.fs().create(999_999).expect("create scratch");
    m.fs().write(999_999, 0, 2 << 20).expect("fill");
    m.fs().read(999_999, 0, 2 << 20).expect("stream");
    let cold = mean(&mut m, &mut |m, i| {
        m.fs().read(i, 0, 4096).expect("read");
    });
    let delete = mean(&mut m, &mut |m, i| {
        m.fs().delete(i).expect("delete");
    });
    m.maintain();
    let ops = 6.0 * N as f64;
    Micro {
        create_us: create,
        write4k_us: write4k,
        over512_us: over512,
        read4k_warm_us: warm,
        read4k_cold_us: cold,
        delete_us: delete,
        energy_mj_per_op: m.total_energy().as_joules() * 1e3 / ops,
    }
}

/// Runs T2.
pub fn run() -> Vec<Table> {
    let mut micro = Table::new(
        "T2a: file-operation latency, memory-resident FS vs FFS-over-disk",
        &[
            "operation",
            "solid-state (us)",
            "disk-based (us)",
            "speedup",
        ],
    );
    let s = micro_solid();
    let d = micro_disk();
    let rows: Vec<(&str, f64, f64)> = vec![
        ("create", s.create_us, d.create_us),
        ("write 4 KB", s.write4k_us, d.write4k_us),
        ("overwrite 512 B", s.over512_us, d.over512_us),
        ("read 4 KB (warm)", s.read4k_warm_us, d.read4k_warm_us),
        ("read 4 KB (cold)", s.read4k_cold_us, d.read4k_cold_us),
        ("delete", s.delete_us, d.delete_us),
        ("energy (mJ/op)", s.energy_mj_per_op, d.energy_mj_per_op),
    ];
    for (op, sv, dv) in rows {
        micro.row(vec![
            op.into(),
            sv.into(),
            dv.into(),
            (dv / sv.max(1e-9)).into(),
        ]);
    }

    let mut macro_t = Table::new(
        "T2b: trace replay, mean data-op latency and energy",
        &[
            "workload",
            "organisation",
            "mean data op (us)",
            "p99 write (us)",
            "energy (J)",
            "errors",
        ],
    );
    for workload in [Workload::Office, Workload::Bsd] {
        let trace = GeneratorConfig::new(workload)
            .with_ops(8_000)
            .with_max_live_bytes(3 << 20)
            .generate();
        let mut solid = MobileComputer::new(MachineConfig::small_notebook());
        let clock = solid.clock().clone();
        let r = replay(&trace, &mut solid, &clock);
        macro_t.row(vec![
            workload.to_string().into(),
            "solid-state".into(),
            r.mean_data_latency().as_micros_f64().into(),
            r.p99_latency(ssmc_trace::OpKind::Write)
                .as_micros_f64()
                .into(),
            solid.total_energy().as_joules().into(),
            r.errors.into(),
        ]);
        let mut disk = DiskComputer::new(
            crate::baseline_policy::baseline_config(),
            BatterySpec::default(),
        );
        let clock = disk.clock().clone();
        let r = replay(&trace, &mut disk, &clock);
        macro_t.row(vec![
            workload.to_string().into(),
            "disk-based".into(),
            r.mean_data_latency().as_micros_f64().into(),
            r.p99_latency(ssmc_trace::OpKind::Write)
                .as_micros_f64()
                .into(),
            disk.total_energy().as_joules().into(),
            r.errors.into(),
        ]);
    }
    vec![micro, macro_t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solid_state_wins_metadata_and_small_ops_by_large_factors() {
        let s = micro_solid();
        let d = micro_disk();
        assert!(
            d.create_us > 20.0 * s.create_us,
            "create: disk {} vs solid {}",
            d.create_us,
            s.create_us
        );
        assert!(
            d.read4k_cold_us > 20.0 * s.read4k_cold_us,
            "cold read: disk {} vs solid {}",
            d.read4k_cold_us,
            s.read4k_cold_us
        );
        // Solid-state data ops are sub-millisecond; deletes may briefly
        // stall behind their own tombstone programs but stay milliseconds
        // under the disk's tens of milliseconds.
        for v in [s.create_us, s.write4k_us, s.over512_us, s.read4k_warm_us] {
            assert!(v < 1_000.0, "op took {v} us");
        }
        assert!(s.delete_us < 5_000.0, "delete took {} us", s.delete_us);
    }
}
