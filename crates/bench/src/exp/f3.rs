//! F3 — §3.3 bank partitioning.
//!
//! Paper: "In order to maintain fast read access ... during the slow
//! erase/write cycles of flash memory, it may prove necessary to
//! partition flash memory into two or more banks." With one bank, every
//! program (~5 ms for a page) and erase (~0.5 s) stalls concurrent reads;
//! with several, reads land on idle banks. We drive a mixed read/write
//! load against 1/2/4/8 banks, plus the explicit read-mostly partition,
//! plus a forward-looking row: the program/erase *suspend* feature later
//! flash generations added, which attacks the same problem in the device
//! instead of in the layout.

use ssmc_device::FlashSpec;
use ssmc_sim::{Clock, Histogram, Table};
use ssmc_storage::{BankPolicy, StorageConfig, StorageManager};

struct Outcome {
    mean_us: f64,
    p99_us: f64,
    stall_pct: f64,
    erases: u64,
}

fn drive(banks: u32, policy: BankPolicy, suspend: Option<ssmc_sim::SimDuration>) -> Outcome {
    let clock = Clock::shared();
    let cfg = StorageConfig {
        page_size: 512,
        dram_buffer_bytes: 32 * 512,
        flash: FlashSpec {
            blocks_per_bank: 1,
            block_bytes: 16 * 1024,
            write_unit: 512,
            suspend_overhead: suspend,
            ..FlashSpec::default()
        }
        .with_capacity(3 << 20)
        .with_banks(banks),
        bank_policy: policy,
        gc_trigger_segments: 3,
        gc_target_segments: 5,
        ..StorageConfig::default()
    };
    let mut sm = StorageManager::new(cfg, clock.clone());
    let data = vec![0u8; 512];
    let mut buf = vec![0u8; 512];

    // Populate a cold read set and push it to flash.
    let cold: Vec<u64> = (0..1_600u64).collect();
    for &p in &cold {
        sm.write_page(p, &data).expect("populate");
    }
    sm.sync().expect("sync");

    // Mixed phase: a writer stream churns hot pages (forcing programs,
    // GC, and erases) while a reader samples the cold set.
    let mut lat = Histogram::new();
    let mut rng = ssmc_sim::SimRng::seed_from_u64(7);
    for round in 0..600u64 {
        for i in 0..8u64 {
            let hot = 10_000 + (round * 8 + i) % 256;
            sm.write_page(hot, &data).expect("hot write");
        }
        sm.sync().expect("flush hot");
        // Reads arrive while the flush burst is still programming.
        for _ in 0..4 {
            let p = cold[rng.below(cold.len() as u64) as usize];
            let t0 = clock.now();
            sm.read_page(p, &mut buf).expect("read");
            lat.record_duration(clock.now().since(t0));
        }
        // Pace the writer so the offered load stays within the device's
        // program bandwidth (~41 ms of programs per 60 ms round).
        clock.advance(ssmc_sim::SimDuration::from_millis(60));
        sm.tick().expect("tick");
    }
    let c = sm.flash().counters();
    Outcome {
        mean_us: lat.mean() / 1_000.0,
        p99_us: lat.quantile(0.99) as f64 / 1_000.0,
        stall_pct: 100.0 * c.stalled_reads as f64 / c.reads.max(1) as f64,
        erases: c.erases,
    }
}

/// Runs F3.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "F3: read latency under concurrent flash programs/erases vs bank count",
        &[
            "banks",
            "policy",
            "mean read (us)",
            "p99 read (us)",
            "stalled reads (%)",
            "erases",
        ],
    );
    for banks in [1u32, 2, 4, 8] {
        let o = drive(banks, BankPolicy::Unified, None);
        t.row(vec![
            (banks as u64).into(),
            "unified".into(),
            o.mean_us.into(),
            o.p99_us.into(),
            o.stall_pct.into(),
            o.erases.into(),
        ]);
    }
    let o = drive(4, BankPolicy::ReadMostlyPartition { read_banks: 2 }, None);
    t.row(vec![
        4u64.into(),
        "read-mostly partition (2+2)".into(),
        o.mean_us.into(),
        o.p99_us.into(),
        o.stall_pct.into(),
        o.erases.into(),
    ]);
    // Forward-looking: suspend-capable parts solve the problem in the
    // device even with a single bank.
    let o = drive(
        1,
        BankPolicy::Unified,
        Some(ssmc_sim::SimDuration::from_micros(20)),
    );
    t.row(vec![
        1u64.into(),
        "with program/erase suspend (post-1993)".into(),
        o.mean_us.into(),
        o.p99_us.into(),
        o.stall_pct.into(),
        o.erases.into(),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_banks_means_fewer_stalls() {
        let one = drive(1, BankPolicy::Unified, None);
        let four = drive(4, BankPolicy::Unified, None);
        assert!(
            four.stall_pct < one.stall_pct,
            "4 banks {} % vs 1 bank {} %",
            four.stall_pct,
            one.stall_pct
        );
        assert!(
            four.mean_us < one.mean_us,
            "4 banks {} us vs 1 bank {} us",
            four.mean_us,
            one.mean_us
        );
    }

    #[test]
    fn single_bank_reads_stall_toward_program_scale() {
        let one = drive(1, BankPolicy::Unified, None);
        // A bare 512 B read is ~51 us; stalls push the mean well past it.
        assert!(one.mean_us > 100.0, "mean {} us", one.mean_us);
    }

    #[test]
    fn suspend_beats_banking_at_equal_bank_count() {
        let plain = drive(1, BankPolicy::Unified, None);
        let suspended = drive(
            1,
            BankPolicy::Unified,
            Some(ssmc_sim::SimDuration::from_micros(20)),
        );
        assert!(
            suspended.mean_us < plain.mean_us / 10.0,
            "suspend {} us vs plain {} us",
            suspended.mean_us,
            plain.mean_us
        );
    }
}
