//! F4 — §3.3 wear leveling.
//!
//! Paper: "in order to evenly balance the write load throughout flash
//! memory, the storage manager can use garbage collection techniques like
//! those used in log-structured file systems" — otherwise hot spots burn
//! through their 100 k cycles while cold blocks stay pristine. We drive a
//! skewed update workload (90 % of writes to 5 % of pages) against four
//! placements and report the wear distribution and the projected life of
//! the device (set by its *worst* block).

use ssmc_core::project_lifetime_years;
use ssmc_device::FlashSpec;
use ssmc_sim::{parallel_sweep, Clock, SimDuration, Table};
use ssmc_storage::{GcPolicy, Placement, StorageConfig, StorageManager, WearLeveling};

struct Outcome {
    erases: u64,
    max_erases: u64,
    evenness: f64,
    amplification: f64,
    lifetime_years: Option<f64>,
}

fn drive(placement: Placement, gc: GcPolicy, wl: WearLeveling) -> Outcome {
    let clock = Clock::shared();
    let cfg = StorageConfig {
        page_size: 512,
        dram_buffer_bytes: 16 * 512,
        flash: FlashSpec {
            block_bytes: 16 * 1024,
            write_unit: 512,
            ..FlashSpec::default()
        }
        .with_capacity(4 << 20)
        .with_banks(2),
        placement,
        gc,
        wear_leveling: wl,
        gc_trigger_segments: 4,
        gc_target_segments: 6,
        checkpointing: false,
        ..StorageConfig::default()
    };
    let mut sm = StorageManager::new(cfg, clock.clone());
    let data = vec![0u8; 512];
    // Cold base data: 2000 pages (~1 MB), written once.
    for p in 0..2_000u64 {
        sm.write_page(p, &data).expect("cold");
    }
    sm.sync().expect("sync");
    // Skewed updates: 90 % to a 100-page hot set, 10 % uniform.
    let mut rng = ssmc_sim::SimRng::seed_from_u64(11);
    for i in 0..30_000u64 {
        let page = if rng.chance(0.9) {
            rng.below(100)
        } else {
            rng.below(2_000)
        };
        sm.write_page(page, &data).expect("update");
        clock.advance(SimDuration::from_millis(20));
        if i % 64 == 0 {
            sm.sync().expect("sync");
            sm.tick().expect("tick");
        }
    }
    sm.sync().expect("final sync");
    let elapsed = clock.now().since(ssmc_sim::SimTime::ZERO);
    let stats = sm.flash().wear_stats();
    Outcome {
        erases: stats.total_erases,
        max_erases: stats.max_erases,
        evenness: stats.evenness(),
        amplification: sm.metrics().write_amplification(),
        lifetime_years: project_lifetime_years(sm.flash(), elapsed),
    }
}

/// The four placements F4 compares, with display labels.
pub fn policies() -> Vec<(&'static str, Placement, GcPolicy, WearLeveling)> {
    vec![
        (
            "in-place (naive FTL)",
            Placement::InPlace,
            GcPolicy::Greedy,
            WearLeveling::None,
        ),
        (
            "log + greedy GC",
            Placement::LogStructured,
            GcPolicy::Greedy,
            WearLeveling::None,
        ),
        (
            "log + cost-benefit GC",
            Placement::LogStructured,
            GcPolicy::CostBenefit,
            WearLeveling::None,
        ),
        (
            "log + cost-benefit + static WL",
            Placement::LogStructured,
            GcPolicy::CostBenefit,
            WearLeveling::Static { threshold: 3 },
        ),
    ]
}

/// Runs F4.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "F4: wear under a 90/5 skewed update load, by placement policy",
        &[
            "policy",
            "total erases",
            "max erases/block",
            "wear evenness",
            "write amplification",
            "projected life (years)",
        ],
    );
    let policy_list = policies();
    for row in parallel_sweep(&policy_list, |_, &(label, placement, gc, wl)| {
        let o = drive(placement, gc, wl);
        vec![
            label.into(),
            o.erases.into(),
            o.max_erases.into(),
            o.evenness.into(),
            o.amplification.into(),
            match o.lifetime_years {
                Some(y) => y.into(),
                None => "no wear observed".into(),
            },
        ]
    }) {
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_structure_outlives_in_place_under_skew() {
        let naive = drive(Placement::InPlace, GcPolicy::Greedy, WearLeveling::None);
        let lfs = drive(
            Placement::LogStructured,
            GcPolicy::CostBenefit,
            WearLeveling::Static { threshold: 3 },
        );
        let naive_life = naive.lifetime_years.expect("in-place wears");
        let lfs_life = lfs.lifetime_years.expect("log wears too, slowly");
        assert!(
            lfs_life > 5.0 * naive_life,
            "log {lfs_life}y vs in-place {naive_life}y"
        );
        assert!(lfs.evenness > naive.evenness);
    }

    #[test]
    fn in_place_amplifies_writes_brutally() {
        let naive = drive(Placement::InPlace, GcPolicy::Greedy, WearLeveling::None);
        // Every hot-page flush rewrites its 31 co-resident pages.
        assert!(
            naive.amplification > 4.0,
            "amplification {}",
            naive.amplification
        );
    }
}
