//! T3 — §3.1 battery-backed DRAM as (nearly) stable storage.
//!
//! Paper: primary batteries "can preserve the contents of main memory in
//! an otherwise idle system for many days"; lithium backup cells "for
//! many hours"; and "with appropriate care to ensure that an untimely
//! crash is unlikely to corrupt data, DRAM can safely hold file system
//! data". We measure (a) the holding times, and (b) what a total battery
//! failure actually costs as a function of the write-back delay, with and
//! without checkpointing.

use ssmc_core::{MachineConfig, MobileComputer};
use ssmc_device::{Battery, BatterySpec, DramSpec};
use ssmc_sim::{Power, SimDuration, Table};
use ssmc_trace::{replay, GeneratorConfig, Workload};

/// Runs T3.
pub fn run() -> Vec<Table> {
    // (a) Holding times under self-refresh.
    let mut hold = Table::new(
        "T3a: how long batteries preserve idle DRAM (self-refresh)",
        &[
            "DRAM (MB)",
            "draw (mW)",
            "primary pack holds",
            "backup cells hold",
        ],
    );
    let spec = BatterySpec::default();
    for mb in [1u64, 4, 16] {
        let dram = DramSpec::default();
        // Self-refresh scales with array size relative to the 8 MB part.
        let draw_mw = dram.self_refresh_power.as_milliwatts() * mb as f64 / 8.0;
        let draw = Power::from_milliwatts_f64(draw_mw);
        let primary = Battery::new(BatterySpec {
            backup_capacity: ssmc_sim::Energy::ZERO,
            ..spec.clone()
        })
        .time_to_empty(draw);
        let backup = Battery::new(BatterySpec {
            primary_capacity: ssmc_sim::Energy::ZERO,
            ..spec.clone()
        })
        .time_to_empty(draw);
        hold.row(vec![
            mb.into(),
            draw_mw.into(),
            format!("{:.1} days", primary.as_secs_f64() / 86_400.0).into(),
            format!("{:.1} hours", backup.as_secs_f64() / 3_600.0).into(),
        ]);
    }

    // (b) Crash exposure vs flush delay, with and without checkpoints.
    let mut crash = Table::new(
        "T3b: total battery failure mid-workload — cost vs write-back delay",
        &[
            "flush age limit",
            "checkpointing",
            "dirty pages at crash",
            "lost",
            "reverted",
            "resurrected",
            "recovery (ms)",
        ],
    );
    for age_secs in [5u64, 30, 120] {
        for ckpt in [true, false] {
            let mut cfg = MachineConfig::small_notebook();
            cfg.storage.flush.age_limit = SimDuration::from_secs(age_secs);
            cfg.storage.checkpointing = ckpt;
            let mut m = MobileComputer::new(cfg);
            let trace = GeneratorConfig::new(Workload::Bsd)
                .with_ops(6_000)
                .with_max_live_bytes(2 << 20)
                .generate();
            let clock = m.clock().clone();
            let _ = replay(&trace, &mut m, &clock);
            let dirty_at_crash = m.fs().storage().metrics().buffer_occupancy.level();
            m.battery_failure();
            let (report, _fsck) = m.replace_battery_and_recover().expect("recover");
            crash.row(vec![
                format!("{age_secs} s").into(),
                if ckpt { "yes" } else { "no" }.into(),
                (dirty_at_crash as u64).into(),
                report.lost_pages.into(),
                report.reverted_pages.into(),
                report.resurrected_pages.into(),
                report.duration.as_millis_f64().into(),
            ]);
        }
    }
    vec![hold, crash]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pack_holds_idle_dram_for_days() {
        let spec = BatterySpec::default();
        let draw = DramSpec::default().self_refresh_power;
        let t = Battery::new(spec).time_to_empty(draw);
        assert!(
            t.as_secs_f64() > 5.0 * 86_400.0,
            "held only {:.1} days",
            t.as_secs_f64() / 86_400.0
        );
    }

    #[test]
    fn longer_flush_delay_exposes_more_data() {
        let risk = |age_secs: u64| -> u64 {
            let mut cfg = MachineConfig::small_notebook();
            cfg.storage.flush.age_limit = SimDuration::from_secs(age_secs);
            let mut m = MobileComputer::new(cfg);
            let trace = GeneratorConfig::new(Workload::Bsd)
                .with_ops(4_000)
                .with_max_live_bytes(2 << 20)
                .generate();
            let clock = m.clock().clone();
            let _ = replay(&trace, &mut m, &clock);
            m.battery_failure();
            let (report, _) = m.replace_battery_and_recover().expect("recover");
            report.pages_at_risk()
        };
        let short = risk(2);
        let long = risk(300);
        assert!(long > short, "risk at 300 s {long} vs 2 s {short}");
    }

    #[test]
    fn recovery_restores_a_consistent_tree() {
        let mut m = MobileComputer::new(MachineConfig::small_notebook());
        let trace = GeneratorConfig::new(Workload::SoftwareDev)
            .with_ops(3_000)
            .with_max_live_bytes(2 << 20)
            .generate();
        let clock = m.clock().clone();
        let _ = replay(&trace, &mut m, &clock);
        m.battery_failure();
        let (_, fsck) = m.replace_battery_and_recover().expect("recover");
        assert!(!fsck.root_rebuilt, "root survived");
        // Every listed entry must stat cleanly after fsck.
        let names: Vec<String> = m
            .fs()
            .list_dir("/")
            .expect("list")
            .into_iter()
            .map(|e| e.name)
            .collect();
        for n in names {
            m.fs().stat(&format!("/{n}")).expect("consistent entry");
        }
    }
}
