//! T1 — §2 device comparison.
//!
//! Paper: flash reads ≈100 ns/byte (DRAM-like), writes ≈10 µs/byte (two
//! orders slower), erase sectors, 100 k cycles, ≈$50/MB, tens of mW/MB;
//! DRAM faster but costlier; disk far slower but considerably cheaper.
//! We *measure* each catalog device model (512-byte transfers) and print
//! the data-sheet attributes next to the measurements.

use ssmc_device::{
    catalog_1993, fujitsu_m2633, hp_kittyhawk, intel_flash, nec_dram, sundisk_flash,
};
use ssmc_device::{BlockId, Disk, Dram, Flash};
use ssmc_sim::{Clock, Table};

const IO: usize = 512;

fn measure_flash(spec: ssmc_device::FlashSpec) -> (f64, f64, f64) {
    let clock = Clock::shared();
    let mut f = Flash::new(spec.with_capacity(1 << 20), clock);
    let w = f
        .program(0, &vec![0u8; IO])
        .expect("program")
        .as_micros_f64();
    let mut buf = vec![0u8; IO];
    let r = f.read(0, &mut buf).expect("read").as_micros_f64();
    let e = f.erase(BlockId(0)).expect("erase").as_millis_f64();
    (r, w, e)
}

fn measure_dram(spec: ssmc_device::DramSpec) -> (f64, f64) {
    let clock = Clock::shared();
    let mut d = Dram::new(spec.with_capacity(1 << 20), clock);
    let w = d.write(0, &vec![0u8; IO]).expect("write").as_micros_f64();
    let mut buf = vec![0u8; IO];
    let r = d.read(0, &mut buf).expect("read").as_micros_f64();
    (r, w)
}

fn measure_disk(spec: ssmc_device::DiskSpec) -> (f64, f64) {
    let clock = Clock::shared();
    let mut d = Disk::new(spec.with_capacity(4 << 20), clock);
    // Measure a random-ish access (seek across half the span).
    let cap = d.capacity();
    let w = d
        .write(cap / 2, &vec![0u8; IO])
        .expect("write")
        .as_micros_f64();
    let mut buf = vec![0u8; IO];
    let r = d.read(1024, &mut buf).expect("read").as_micros_f64();
    (r, w)
}

/// Runs T1.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "T1: 1993 storage devices — measured 512 B access vs data-sheet attributes",
        &[
            "device",
            "class",
            "read (us)",
            "write (us)",
            "erase (ms)",
            "$ / MB",
            "MB / in^3",
            "active mW/MB",
        ],
    );
    let (r, w) = measure_dram(nec_dram());
    let catalog = catalog_1993();
    let attrs = |name: &str| {
        catalog
            .iter()
            .find(|p| p.name == name)
            .expect("in catalog")
            .clone()
    };
    let a = attrs("NEC 3.3V self-refresh DRAM");
    t.row(vec![
        a.name.into(),
        a.class.to_string().into(),
        r.into(),
        w.into(),
        "-".into(),
        a.cost_per_mb.into(),
        a.density_mb_per_in3.into(),
        a.active_mw_per_mb.into(),
    ]);
    for (spec, name) in [
        (intel_flash(), "Intel memory-mapped flash"),
        (sundisk_flash(), "SunDisk SDP drive replacement"),
    ] {
        let (r, w, e) = measure_flash(spec);
        let a = attrs(name);
        t.row(vec![
            a.name.into(),
            a.class.to_string().into(),
            r.into(),
            w.into(),
            e.into(),
            a.cost_per_mb.into(),
            a.density_mb_per_in3.into(),
            a.active_mw_per_mb.into(),
        ]);
    }
    for (spec, name) in [
        (hp_kittyhawk(), "HP KittyHawk 1.3-inch"),
        (fujitsu_m2633(), "Fujitsu M2633 2.5-inch"),
    ] {
        let (r, w) = measure_disk(spec);
        let a = attrs(name);
        t.row(vec![
            a.name.into(),
            a.class.to_string().into(),
            r.into(),
            w.into(),
            "-".into(),
            a.cost_per_mb.into(),
            a.density_mb_per_in3.into(),
            a.active_mw_per_mb.into(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_reproduces_paper_orderings() {
        let tables = run();
        assert_eq!(tables[0].rows.len(), 5);
        // Measured: Intel flash read ≈ DRAM scale; write ~2 orders slower.
        let (fr, fw, _) = measure_flash(intel_flash());
        assert!(fw / fr > 50.0, "flash write/read ratio {}", fw / fr);
        let (dr, _) = measure_dram(nec_dram());
        assert!(fr < 20.0 * dr, "flash read {fr} vs dram {dr}");
        // Disk is milliseconds.
        let (kr, _) = measure_disk(hp_kittyhawk());
        assert!(kr > 1_000.0, "disk access {kr} us");
    }
}
