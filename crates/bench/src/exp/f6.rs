//! F6 — §3.2 execute-in-place.
//!
//! Paper: "programs residing in flash memory can be executed in place
//! without loss of performance. There is no need to load their code
//! segment into primary storage" (the OmniBook shipped this way). We
//! launch binaries of growing size both ways: XIP launch cost should stay
//! flat and use zero DRAM, demand loading should grow linearly in both;
//! steady-state fetches from flash stay within a small factor of DRAM.

use ssmc_core::{MachineConfig, MobileComputer};
use ssmc_sim::Table;

fn machine() -> MobileComputer {
    MobileComputer::new(MachineConfig::with_sizes("f6", 16 << 20, 48 << 20))
}

/// Runs F6.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "F6a: program launch — execute-in-place vs demand load",
        &[
            "binary (KB)",
            "xip launch (us)",
            "load launch (us)",
            "xip DRAM (pages)",
            "load DRAM (pages)",
        ],
    );
    for kb in [64u64, 256, 1024, 4096, 8192] {
        let mut m = machine();
        let fd = m.fs().create("/app").expect("create");
        m.fs()
            .write(fd, 0, &vec![0xC3u8; (kb * 1024) as usize])
            .expect("write");
        m.fs().sync().expect("sync");
        let xip = m.launch_app("/app", true).expect("xip");
        let load = m.launch_app("/app", false).expect("load");
        t.row(vec![
            kb.into(),
            xip.latency.as_micros_f64().into(),
            load.latency.as_micros_f64().into(),
            xip.dram_pages.into(),
            load.dram_pages.into(),
        ]);
    }

    let mut steady = Table::new(
        "F6b: steady-state instruction fetch (2000 touches of a 256 KB text)",
        &["mode", "total fetch time (us)", "per-fetch (ns)"],
    );
    let mut m = machine();
    let fd = m.fs().create("/app").expect("create");
    m.fs()
        .write(fd, 0, &vec![0xC3u8; 256 * 1024])
        .expect("write");
    m.fs().sync().expect("sync");
    for (label, xip) in [
        ("execute-in-place (flash)", true),
        ("demand-loaded (DRAM)", false),
    ] {
        let stats = m.launch_app("/app", xip).expect("launch");
        let dur = m.run_app(&stats, 256 * 1024, 2_000).expect("run");
        steady.row(vec![
            label.into(),
            dur.as_micros_f64().into(),
            (dur.as_nanos() as f64 / 2_000.0).into(),
        ]);
    }
    vec![t, steady]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xip_launch_flat_load_launch_linear() {
        let run_one = |kb: u64| {
            let mut m = machine();
            let fd = m.fs().create("/app").expect("create");
            m.fs()
                .write(fd, 0, &vec![0u8; (kb * 1024) as usize])
                .expect("write");
            m.fs().sync().expect("sync");
            let xip = m.launch_app("/app", true).expect("xip");
            let load = m.launch_app("/app", false).expect("load");
            (xip, load)
        };
        let (x_small, l_small) = run_one(64);
        let (x_big, l_big) = run_one(2048);
        // XIP: flat in size, zero DRAM.
        assert!(x_big.latency < x_small.latency * 4);
        assert_eq!(x_big.dram_pages, 0);
        // Demand load: linear-ish in size.
        assert!(l_big.latency > l_small.latency * 8);
        assert!(l_big.dram_pages >= 8 * l_small.dram_pages);
        // XIP beats loading at every size.
        assert!(x_small.latency < l_small.latency);
        assert!(x_big.latency < l_big.latency);
    }
}
