//! F1 — §2 technology-trend extrapolation.
//!
//! Paper: memory $/MB and MB/in³ improve ≈40 %/yr vs ≈25 %/yr for disk,
//! so (a) DRAM density passes small-disk density "shortly", (b) DRAM cost
//! reaches disk cost eventually, and (c) by an Intel estimate, 40 MB
//! flash configurations match disk cost "by the year 1996" (requiring a
//! steeper early flash learning curve than 40 %). We print the curves and
//! solve for every crossover under both scenarios.

use ssmc_device::trends::TrendScenario;
use ssmc_device::{Technology, TrendModel};
use ssmc_sim::Table;

/// Runs F1.
pub fn run() -> Vec<Table> {
    let m = TrendModel::default();
    let mut curve = Table::new(
        "F1a: $/MB by year (paper rates; flash also shown under the Intel forecast)",
        &[
            "year",
            "DRAM $/MB",
            "flash $/MB (40%/yr)",
            "flash $/MB (forecast)",
            "disk $/MB",
            "DRAM MB/in^3",
            "disk MB/in^3",
        ],
    );
    for year in 1993..=2003u32 {
        let y = year as f64;
        curve.row(vec![
            (year as u64).into(),
            m.cost_per_mb(Technology::Dram, y, TrendScenario::PaperRates)
                .into(),
            m.cost_per_mb(Technology::Flash, y, TrendScenario::PaperRates)
                .into(),
            m.cost_per_mb(Technology::Flash, y, TrendScenario::IntelForecast)
                .into(),
            m.cost_per_mb(Technology::Disk, y, TrendScenario::PaperRates)
                .into(),
            m.density(Technology::Dram, y).into(),
            m.density(Technology::Disk, y).into(),
        ]);
    }

    let mut cross = Table::new(
        "F1b: crossover years (unit cost includes the disk's fixed mechanism cost)",
        &["comparison", "config", "scenario", "crossover year"],
    );
    let fmt = |y: Option<f64>| -> ssmc_sim::Cell {
        match y {
            Some(y) => format!("{y:.1}").into(),
            None => "beyond horizon".into(),
        }
    };
    cross.row(vec![
        "DRAM density >= disk density".into(),
        "-".into(),
        "paper rates".into(),
        fmt(m.density_crossover_year(Technology::Dram, Technology::Disk, 15.0)),
    ]);
    for mb in [20.0, 40.0, 120.0] {
        for (scenario, label) in [
            (TrendScenario::IntelForecast, "Intel forecast"),
            (TrendScenario::PaperRates, "paper rates"),
        ] {
            cross.row(vec![
                "flash unit cost <= disk".into(),
                format!("{mb:.0} MB").into(),
                label.into(),
                fmt(m.cost_crossover_year(Technology::Flash, Technology::Disk, mb, 30.0, scenario)),
            ]);
        }
    }
    cross.row(vec![
        "DRAM unit cost <= disk".into(),
        "20 MB".into(),
        "paper rates".into(),
        fmt(m.cost_crossover_year(
            Technology::Dram,
            Technology::Disk,
            20.0,
            40.0,
            TrendScenario::PaperRates,
        )),
    ]);
    vec![curve, cross]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_tables_have_expected_shape() {
        let tables = run();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 11); // 1993..=2003
        assert_eq!(tables[1].rows.len(), 1 + 6 + 1);
    }

    #[test]
    fn intel_forecast_crosses_by_mid_90s_at_40mb() {
        let m = TrendModel::default();
        let y = m
            .cost_crossover_year(
                Technology::Flash,
                Technology::Disk,
                40.0,
                30.0,
                TrendScenario::IntelForecast,
            )
            .expect("crossover");
        assert!(y < 1998.5, "crossover {y}");
    }
}
