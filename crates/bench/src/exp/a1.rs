//! A1 — ablation: write-buffer flush policy.
//!
//! The §3.3 write buffer has one central knob: how long dirty data may
//! linger in DRAM. DESIGN.md calls this the §3.1/§3.3 trade — a longer
//! write-back delay absorbs more traffic (performance, wear) but exposes
//! more data to battery failure. This ablation sweeps the age limit and
//! the watermark pair and reports both sides at once.

use ssmc_core::{MachineConfig, MobileComputer};
use ssmc_sim::{SimDuration, Table};
use ssmc_trace::{replay, GeneratorConfig, OpKind, Workload};

struct Outcome {
    reduction_pct: f64,
    mean_write_us: f64,
    dirty_mean_kb: f64,
    dirty_peak_kb: f64,
    flash_pages: u64,
}

fn drive(age_secs: u64, high: f64, low: f64) -> Outcome {
    let mut cfg = MachineConfig::small_notebook();
    cfg.storage.flush.age_limit = SimDuration::from_secs(age_secs);
    cfg.storage.flush.high_watermark = high;
    cfg.storage.flush.low_watermark = low;
    let mut m = MobileComputer::new(cfg);
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(12_000)
        .with_max_live_bytes(3 << 20)
        .generate();
    let clock = m.clock().clone();
    let report = replay(&trace, &mut m, &clock);
    let now = m.fs().storage().now();
    let sm = m.fs().storage().metrics();
    Outcome {
        reduction_pct: sm.write_traffic_reduction() * 100.0,
        mean_write_us: report.mean_latency(OpKind::Write).as_micros_f64(),
        dirty_mean_kb: sm.dirty_exposure.mean(now) / 1024.0,
        dirty_peak_kb: sm.dirty_exposure.peak() / 1024.0,
        flash_pages: sm.user_flash_pages,
    }
}

/// Runs A1.
pub fn run() -> Vec<Table> {
    let mut age = Table::new(
        "A1a: flush age limit — traffic absorbed vs data exposed (BSD workload)",
        &[
            "age limit (s)",
            "traffic reduction (%)",
            "mean write (us)",
            "mean dirty (KB)",
            "peak dirty (KB)",
            "user pages to flash",
        ],
    );
    for secs in [1u64, 5, 15, 30, 60, 180] {
        let o = drive(secs, 0.9, 0.75);
        age.row(vec![
            secs.into(),
            o.reduction_pct.into(),
            o.mean_write_us.into(),
            o.dirty_mean_kb.into(),
            o.dirty_peak_kb.into(),
            o.flash_pages.into(),
        ]);
    }
    let mut marks = Table::new(
        "A1b: watermark pair at a 30 s age limit",
        &[
            "high/low watermark",
            "traffic reduction (%)",
            "mean write (us)",
            "peak dirty (KB)",
        ],
    );
    for (high, low) in [(0.5, 0.25), (0.75, 0.5), (0.9, 0.75), (0.98, 0.9)] {
        let o = drive(30, high, low);
        marks.row(vec![
            format!("{high:.2}/{low:.2}").into(),
            o.reduction_pct.into(),
            o.mean_write_us.into(),
            o.dirty_peak_kb.into(),
        ]);
    }
    vec![age, marks]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_delay_absorbs_more_but_exposes_more() {
        let short = drive(1, 0.9, 0.75);
        let long = drive(120, 0.9, 0.75);
        assert!(
            long.reduction_pct > short.reduction_pct,
            "long {} vs short {}",
            long.reduction_pct,
            short.reduction_pct
        );
        assert!(
            long.dirty_mean_kb > short.dirty_mean_kb,
            "exposure: long {} vs short {}",
            long.dirty_mean_kb,
            short.dirty_mean_kb
        );
    }
}
