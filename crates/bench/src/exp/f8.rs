//! F8 — §3.1 copy-on-write mapped files.
//!
//! Paper: "files in flash memory can be mapped directly into the address
//! spaces of interested processes without having to make a copy in
//! primary storage ... Copy-on-write techniques can be used to postpone
//! the complications brought on by the erase/write behavior of flash
//! until application-level writes actually take place." We open a
//! flash-resident document writable and edit a varying fraction of it,
//! under both policies, counting copies and DRAM occupancy.

use ssmc_core::{MachineConfig, MobileComputer};
use ssmc_memfs::{OpenMode, WritePolicy};
use ssmc_sim::Table;

const DOC_PAGES: u64 = 512; // a 256 KB document of 512-byte pages

struct Outcome {
    pages_copied: u64,
    open_us: f64,
    edit_us: f64,
}

fn edit_session(policy: WritePolicy, edit_pages: u64) -> Outcome {
    let mut cfg = MachineConfig::with_sizes("f8", 8 << 20, 24 << 20);
    cfg.write_policy = policy;
    let mut m = MobileComputer::new(cfg);
    let clock = m.clock().clone();
    let fd = m.fs().create("/doc").expect("create");
    m.fs()
        .write(fd, 0, &vec![0x42u8; (DOC_PAGES * 512) as usize])
        .expect("write");
    m.fs().close(fd).expect("close");
    m.fs().sync().expect("sync");
    // Drain the asynchronous program burst so the session measures the
    // policies, not queueing behind the initial flush.
    clock.advance(ssmc_sim::SimDuration::from_secs(30));
    m.fs().tick().expect("tick");

    let before = m.fs().storage().metrics().pages_written;
    let t0 = clock.now();
    let fd = m.fs().open("/doc", OpenMode::Write).expect("open rw");
    let open_us = clock.now().since(t0).as_micros_f64();

    let t1 = clock.now();
    // Edit the first `edit_pages` pages with small record updates.
    for p in 0..edit_pages {
        m.fs()
            .write(fd, p * 512 + 64, &[0x99u8; 100])
            .expect("edit");
    }
    let edit_us = clock.now().since(t1).as_micros_f64();
    let pages_copied = m.fs().storage().metrics().pages_written - before;
    Outcome {
        pages_copied,
        open_us,
        edit_us,
    }
}

/// Runs F8.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "F8: editing a 256 KB flash-resident document — copy-on-write vs copy-on-open",
        &[
            "pages edited",
            "policy",
            "pages dirtied in DRAM",
            "open (us)",
            "edits (us)",
        ],
    );
    for edit_pages in [1u64, 16, 64, 256] {
        for (policy, label) in [
            (WritePolicy::CopyOnWrite, "copy-on-write"),
            (WritePolicy::CopyOnOpen, "copy-on-open"),
        ] {
            let o = edit_session(policy, edit_pages);
            t.row(vec![
                edit_pages.into(),
                label.into(),
                o.pages_copied.into(),
                o.open_us.into(),
                o.edit_us.into(),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cow_copies_scale_with_edits_not_file_size() {
        let small_edit = edit_session(WritePolicy::CopyOnWrite, 4);
        // 4 data pages + inode churn; nowhere near the 512-page file.
        assert!(
            small_edit.pages_copied < 20,
            "copied {}",
            small_edit.pages_copied
        );
        let full = edit_session(WritePolicy::CopyOnOpen, 4);
        assert!(
            full.pages_copied >= DOC_PAGES,
            "copy-on-open copied only {}",
            full.pages_copied
        );
        // Opening is where copy-on-open pays.
        assert!(full.open_us > 20.0 * small_edit.open_us.max(0.1));
    }

    #[test]
    fn policies_converge_when_everything_is_edited() {
        let cow = edit_session(WritePolicy::CopyOnWrite, DOC_PAGES);
        let coo = edit_session(WritePolicy::CopyOnOpen, DOC_PAGES);
        // Both end up dirtying the whole file, within metadata noise.
        let ratio = coo.pages_copied as f64 / cow.pages_copied as f64;
        assert!((0.5..2.5).contains(&ratio), "ratio {ratio}");
    }
}
