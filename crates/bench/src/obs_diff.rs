//! `obs-diff`: structural comparison of observability artifacts.
//!
//! Takes two runs — as `.tl` timelines or `TraceArtifact` JSON — and
//! reports per-metric drift, turning every sensitivity sweep into a
//! diffable, regression-gated artifact. Two timelines are compared
//! row-by-row (worst deviation over aligned sample rows, plus shape:
//! interval, row count, channel sets); everything else is compared on
//! final values — counters and gauges numerically, histograms
//! structurally (bucket-by-bucket against their published bounds, not
//! just by quantile), time-weighted signals by level and peak.
//!
//! The default thresholds are zero: fixed-seed runs are byte-identical,
//! so *any* drift is signal. Sweeps that expect variation pass
//! `--rel-tol`/`--abs-tol`.

use crate::obs_trace::TraceArtifact;
use ssmc_sim::obs::Instrument;
use ssmc_sim::report::{FromReport, Value};
use ssmc_sim::stats::Histogram;
use ssmc_sim::timeline::{ChannelKind, Timeline, TIMELINE_MAGIC};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Read};
use std::path::Path;

/// Comparison thresholds. A metric drifts only if it exceeds *both*
/// tolerances (so `abs_tol` forgives absolute noise on large values and
/// `rel_tol` forgives relative noise, independently).
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffOptions {
    /// Allowed relative deviation, e.g. `0.05` for 5%.
    pub rel_tol: f64,
    /// Allowed absolute deviation.
    pub abs_tol: f64,
}

impl DiffOptions {
    fn within(&self, a: f64, b: f64) -> bool {
        if a == b || (a.is_nan() && b.is_nan()) {
            return true;
        }
        let abs = (a - b).abs();
        let denom = a.abs().max(b.abs());
        let rel = if denom > 0.0 { abs / denom } else { 0.0 };
        abs <= self.abs_tol || rel <= self.rel_tol
    }
}

/// One drifting metric.
#[derive(Debug, Clone)]
pub struct Drift {
    /// Metric/channel name (suffixed `.level`/`.peak`/`[bucket i]` for
    /// compound instruments, `@row N` context for timelines).
    pub metric: String,
    /// Value on the A side (worst row for timelines).
    pub a: f64,
    /// Value on the B side.
    pub b: f64,
}

impl Drift {
    fn rel(&self) -> f64 {
        let denom = self.a.abs().max(self.b.abs());
        if denom > 0.0 {
            (self.a - self.b).abs() / denom
        } else {
            0.0
        }
    }
}

/// The full comparison result.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Metrics present on both sides and compared.
    pub compared: usize,
    /// Metrics exceeding the thresholds, in name order.
    pub drifts: Vec<Drift>,
    /// Metrics only the A side has.
    pub only_a: Vec<String>,
    /// Metrics only the B side has.
    pub only_b: Vec<String>,
    /// Structural mismatches (interval, row count, instrument kind).
    pub shape: Vec<String>,
}

impl DiffReport {
    /// True when the two runs are indistinguishable under the thresholds.
    pub fn is_clean(&self) -> bool {
        self.drifts.is_empty()
            && self.only_a.is_empty()
            && self.only_b.is_empty()
            && self.shape.is_empty()
    }

    /// Human-readable rendering (drifts sorted worst-first, capped).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "compared {} metrics", self.compared);
        for s in &self.shape {
            let _ = writeln!(out, "  shape: {s}");
        }
        for m in &self.only_a {
            let _ = writeln!(out, "  only in A: {m}");
        }
        for m in &self.only_b {
            let _ = writeln!(out, "  only in B: {m}");
        }
        let mut worst: Vec<&Drift> = self.drifts.iter().collect();
        worst.sort_by(|x, y| y.rel().total_cmp(&x.rel()));
        const CAP: usize = 40;
        for d in worst.iter().take(CAP) {
            let _ = writeln!(
                out,
                "  drift: {} a={} b={} ({:+.3}%)",
                d.metric,
                d.a,
                d.b,
                (d.b - d.a) / d.a.abs().max(d.b.abs()).max(f64::MIN_POSITIVE) * 100.0
            );
        }
        if worst.len() > CAP {
            let _ = writeln!(out, "  … and {} more drifting metrics", worst.len() - CAP);
        }
        if self.is_clean() {
            let _ = writeln!(out, "  no drift");
        }
        out
    }
}

/// A loaded comparison input.
#[derive(Debug)]
pub enum DiffInput {
    /// A decoded `.tl` timeline.
    Timeline(Timeline),
    /// A decoded traced-replay artifact.
    Artifact(Box<TraceArtifact>),
}

/// Loads either input format, sniffing the `.tl` magic (extension is not
/// trusted — CI pipes both through temp paths).
///
/// # Errors
///
/// Filesystem errors, or content that is neither a timeline nor a trace
/// artifact.
pub fn load(path: &Path) -> io::Result<DiffInput> {
    let mut f = fs::File::open(path)?;
    let mut head = [0u8; 8];
    let n = f.read(&mut head)?;
    drop(f);
    if n == 8 && head == TIMELINE_MAGIC {
        return Ok(DiffInput::Timeline(Timeline::read(path)?));
    }
    let text = fs::read_to_string(path)?;
    let value = Value::decode(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("not JSON: {e}")))?;
    let artifact = TraceArtifact::from_report(&value).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("not a trace artifact: {e}"),
        )
    })?;
    Ok(DiffInput::Artifact(Box::new(artifact)))
}

/// Compares two inputs. Timeline×timeline goes row-by-row; any mix
/// involving an artifact compares final values (a timeline's last row
/// carries the end-of-run state by construction).
pub fn diff(a: &DiffInput, b: &DiffInput, opts: &DiffOptions) -> DiffReport {
    match (a, b) {
        (DiffInput::Timeline(x), DiffInput::Timeline(y)) => diff_timelines(x, y, opts),
        _ => diff_maps(&metric_map(a), &metric_map(b), opts),
    }
}

fn diff_timelines(a: &Timeline, b: &Timeline, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    if a.interval() != b.interval() {
        report.shape.push(format!(
            "sample interval: A={}ns B={}ns",
            a.interval().as_nanos(),
            b.interval().as_nanos()
        ));
    }
    if a.rows() != b.rows() {
        report
            .shape
            .push(format!("rows: A={} B={}", a.rows(), b.rows()));
    }
    for c in b.channels() {
        if a.channel_index(&c.name).is_none() {
            report.only_b.push(c.name.clone());
        }
    }
    let rows = a.rows().min(b.rows());
    for (ia, c) in a.channels().iter().enumerate() {
        let Some(ib) = b.channel_index(&c.name) else {
            report.only_a.push(c.name.clone());
            continue;
        };
        if b.channels()[ib].kind != c.kind {
            report
                .shape
                .push(format!("channel kind differs: {}", c.name));
            continue;
        }
        report.compared += 1;
        // Worst deviation over aligned rows, so a transient spike that
        // settles back by end of run still shows up.
        let mut worst: Option<(usize, f64, f64)> = None;
        let mut worst_abs = 0.0f64;
        for row in 0..rows {
            let (va, vb) = match c.kind {
                ChannelKind::Counter => (a.value(row, ia) as f64, b.value(row, ib) as f64),
                ChannelKind::Gauge => (a.gauge(row, ia), b.gauge(row, ib)),
            };
            if opts.within(va, vb) {
                continue;
            }
            let dev = (va - vb).abs();
            if worst.is_none() || dev > worst_abs {
                worst_abs = dev;
                worst = Some((row, va, vb));
            }
        }
        if let Some((row, va, vb)) = worst {
            report.drifts.push(Drift {
                metric: format!("{} @row {row}", c.name),
                a: va,
                b: vb,
            });
        }
    }
    report
}

/// The common shape scalar/structural comparisons run over.
#[derive(Debug, Clone)]
enum MetricVal {
    Counter(u64),
    Gauge(f64),
    Histo {
        buckets: Vec<u64>,
        count: u64,
        sum: u128,
    },
    Weighted {
        level: f64,
        peak: f64,
    },
}

impl MetricVal {
    /// A single representative scalar, for cross-kind comparisons (e.g. a
    /// timeline gauge against a registry `TimeWeighted` level).
    fn scalar(&self) -> Option<f64> {
        match self {
            MetricVal::Counter(v) => Some(*v as f64),
            MetricVal::Gauge(v) => Some(*v),
            MetricVal::Weighted { level, .. } => Some(*level),
            MetricVal::Histo { .. } => None,
        }
    }
}

fn metric_map(input: &DiffInput) -> BTreeMap<String, MetricVal> {
    let mut map = BTreeMap::new();
    match input {
        DiffInput::Timeline(tl) => {
            for (i, c) in tl.channels().iter().enumerate() {
                let v = match c.kind {
                    ChannelKind::Counter => MetricVal::Counter(tl.final_value(i)),
                    ChannelKind::Gauge => MetricVal::Gauge(f64::from_bits(tl.final_value(i))),
                };
                map.insert(c.name.clone(), v);
            }
        }
        DiffInput::Artifact(art) => {
            for (name, inst) in art.registry.iter() {
                let v = match inst {
                    Instrument::Counter(v) => MetricVal::Counter(*v),
                    Instrument::Gauge(v) => MetricVal::Gauge(*v),
                    Instrument::Histogram(h) => MetricVal::Histo {
                        buckets: h.bucket_counts().to_vec(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                    Instrument::TimeWeighted(t) => MetricVal::Weighted {
                        level: t.level(),
                        peak: t.peak(),
                    },
                };
                map.insert(name.to_owned(), v);
            }
            map.insert("trace.ops".into(), MetricVal::Counter(art.ops));
            for row in &art.journal.aggregates {
                let k = row.kind.name();
                map.insert(format!("span.{k}.count"), MetricVal::Counter(row.agg.count));
                map.insert(format!("span.{k}.pages"), MetricVal::Counter(row.agg.pages));
                map.insert(format!("span.{k}.bytes"), MetricVal::Counter(row.agg.bytes));
                map.insert(
                    format!("span.{k}.latency"),
                    MetricVal::Histo {
                        buckets: row.agg.latency.bucket_counts().to_vec(),
                        count: row.agg.latency.count(),
                        sum: row.agg.latency.sum(),
                    },
                );
            }
        }
    }
    map
}

fn diff_maps(
    a: &BTreeMap<String, MetricVal>,
    b: &BTreeMap<String, MetricVal>,
    opts: &DiffOptions,
) -> DiffReport {
    let mut report = DiffReport::default();
    for name in b.keys() {
        if !a.contains_key(name) {
            report.only_b.push(name.clone());
        }
    }
    for (name, va) in a {
        let Some(vb) = b.get(name) else {
            report.only_a.push(name.clone());
            continue;
        };
        report.compared += 1;
        match (va, vb) {
            (
                MetricVal::Histo {
                    buckets: ba,
                    count: ca,
                    sum: sa,
                },
                MetricVal::Histo {
                    buckets: bb,
                    count: cb,
                    sum: sb,
                },
            ) => {
                scalar_drift(&mut report, opts, format!("{name}.count"), *ca as f64, *cb as f64);
                scalar_drift(&mut report, opts, format!("{name}.sum"), *sa as f64, *sb as f64);
                // Structural: bucket-by-bucket against the shared bounds,
                // so a shifted distribution with identical quantile
                // summaries still shows.
                for (i, (&xa, &xb)) in ba.iter().zip(bb.iter()).enumerate() {
                    if xa != xb {
                        let (lo, hi) = Histogram::bucket_bounds(i);
                        scalar_drift(
                            &mut report,
                            opts,
                            format!("{name}[{lo}..={hi}]"),
                            xa as f64,
                            xb as f64,
                        );
                    }
                }
            }
            (
                MetricVal::Weighted {
                    level: la,
                    peak: pa,
                },
                MetricVal::Weighted {
                    level: lb,
                    peak: pb,
                },
            ) => {
                scalar_drift(&mut report, opts, format!("{name}.level"), *la, *lb);
                scalar_drift(&mut report, opts, format!("{name}.peak"), *pa, *pb);
            }
            _ => match (va.scalar(), vb.scalar()) {
                (Some(xa), Some(xb)) => scalar_drift(&mut report, opts, name.clone(), xa, xb),
                _ => report
                    .shape
                    .push(format!("instrument kind differs: {name}")),
            },
        }
    }
    report
}

fn scalar_drift(report: &mut DiffReport, opts: &DiffOptions, metric: String, a: f64, b: f64) {
    if !opts.within(a, b) {
        report.drifts.push(Drift { metric, a, b });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmc_sim::timeline::{Channel, Schema, TimelineWriter};
    use ssmc_sim::SimDuration;
    use std::io::Cursor;

    fn tl(rows: &[[u64; 2]], interval_ns: u64) -> Timeline {
        let schema = Schema {
            channels: vec![
                Channel {
                    name: "x".into(),
                    kind: ChannelKind::Counter,
                },
                Channel {
                    name: "g".into(),
                    kind: ChannelKind::Gauge,
                },
            ],
        };
        let mut w = TimelineWriter::new(
            Cursor::new(Vec::new()),
            &schema,
            SimDuration::from_nanos(interval_ns),
        )
        .expect("header");
        for r in rows {
            w.push_row(r).expect("row");
        }
        let (_, sink) = w.finish().expect("finish");
        Timeline::decode(&mut Cursor::new(sink.into_inner())).expect("decode")
    }

    #[test]
    fn identical_timelines_are_clean() {
        let rows = [[1, (0.5f64).to_bits()], [4, (0.25f64).to_bits()]];
        let a = tl(&rows, 100);
        let b = tl(&rows, 100);
        let r = diff(
            &DiffInput::Timeline(a),
            &DiffInput::Timeline(b),
            &DiffOptions::default(),
        );
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.compared, 2);
    }

    #[test]
    fn timeline_drift_and_shape_are_flagged() {
        let a = tl(&[[1, (0.5f64).to_bits()], [4, (0.5f64).to_bits()]], 100);
        let b = tl(&[[1, (0.5f64).to_bits()], [9, (0.5f64).to_bits()]], 200);
        let r = diff(
            &DiffInput::Timeline(a),
            &DiffInput::Timeline(b),
            &DiffOptions::default(),
        );
        assert!(!r.is_clean());
        assert_eq!(r.shape.len(), 1, "interval mismatch: {}", r.render());
        assert_eq!(r.drifts.len(), 1);
        assert!(r.drifts[0].metric.starts_with("x @row 1"));
    }

    #[test]
    fn tolerances_forgive_small_drift() {
        let a = tl(&[[100, (1.0f64).to_bits()]], 100);
        let b = tl(&[[103, (1.0f64).to_bits()]], 100);
        assert!(!diff(
            &DiffInput::Timeline(tl(&[[100, (1.0f64).to_bits()]], 100)),
            &DiffInput::Timeline(tl(&[[103, (1.0f64).to_bits()]], 100)),
            &DiffOptions::default(),
        )
        .is_clean());
        let r = diff(
            &DiffInput::Timeline(a),
            &DiffInput::Timeline(b),
            &DiffOptions {
                rel_tol: 0.05,
                abs_tol: 0.0,
            },
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn transient_spike_is_caught_even_if_final_values_match() {
        // Counters identical at the end, divergent mid-run: row-by-row
        // comparison must flag it.
        let a = tl(&[[0, 0], [5, 0], [10, 0]], 100);
        let b = tl(&[[0, 0], [9, 0], [10, 0]], 100);
        let r = diff(
            &DiffInput::Timeline(a),
            &DiffInput::Timeline(b),
            &DiffOptions::default(),
        );
        assert_eq!(r.drifts.len(), 1);
        assert!(r.drifts[0].metric.contains("@row 1"));
    }
}
