//! Traced replay: the shared recipe behind `experiments --trace-out`,
//! the `trace-dump` renderer, and the determinism golden test.
//!
//! A traced run replays a fixed-seed workload through the throughput
//! machine with an enabled [`Recorder`], then captures the journal
//! snapshot and the unified metrics registry as one serializable
//! artifact. Everything in the artifact is simulation-time-stamped, so
//! the same seed produces byte-identical output on every host.

use ssmc_core::{run_trace, MachineConfig, MobileComputer};
use ssmc_sim::obs::{JournalSnapshot, MetricsRegistry, Recorder, DEFAULT_JOURNAL_CAPACITY};
use ssmc_sim::report::{field, FromReport, ReportError, ToReport, Value};
use ssmc_sim::timeline::TimelineSummary;
use ssmc_sim::SimDuration;
use ssmc_trace::{GeneratorConfig, Workload};
use std::path::Path;

/// Seed every traced replay uses (the paper's publication year, matching
/// the determinism suite).
pub const TRACE_SEED: u64 = 1993;

/// A complete traced-replay artifact: where it ran, what it replayed, and
/// the observability output.
#[derive(Debug)]
pub struct TraceArtifact {
    /// Machine configuration name.
    pub machine: String,
    /// Workload name.
    pub workload: String,
    /// Operations replayed.
    pub ops: u64,
    /// The event journal (ring + per-kind aggregates).
    pub journal: JournalSnapshot,
    /// The unified metrics registry at end of run.
    pub registry: MetricsRegistry,
}

impl ToReport for TraceArtifact {
    fn to_report(&self) -> Value {
        Value::object(vec![
            ("machine", self.machine.to_report()),
            ("workload", self.workload.to_report()),
            ("ops", self.ops.to_report()),
            ("journal", self.journal.to_report()),
            ("registry", self.registry.to_report()),
        ])
    }
}

impl FromReport for TraceArtifact {
    fn from_report(v: &Value) -> Result<Self, ReportError> {
        Ok(TraceArtifact {
            machine: field(v, "machine")?,
            workload: field(v, "workload")?,
            ops: field(v, "ops")?,
            journal: field(v, "journal")?,
            registry: field(v, "registry")?,
        })
    }
}

/// The machine the throughput macrobenchmark replays into: the F2
/// notebook configuration with its 1 MB battery-backed write buffer.
pub fn throughput_machine() -> MobileComputer {
    let mut cfg = MachineConfig::with_sizes("throughput", 8 << 20, 24 << 20);
    cfg.write_buffer_bytes = Some(1 << 20);
    MobileComputer::new(cfg)
}

/// Replays `ops` fixed-seed operations of `workload` with tracing on and
/// returns the artifact. Single-threaded and SimTime-stamped, so the
/// output is independent of the host and of `set_threads`.
pub fn traced_replay(workload: Workload, ops: u64) -> TraceArtifact {
    let trace = GeneratorConfig::new(workload)
        .with_ops(ops as usize)
        .with_seed(TRACE_SEED)
        .with_max_live_bytes(4 << 20)
        .generate();
    let mut machine = throughput_machine();
    let recorder = Recorder::enabled(DEFAULT_JOURNAL_CAPACITY);
    machine.set_recorder(recorder.clone());
    let report = run_trace(&mut machine, &trace);
    assert_eq!(report.replay.errors, 0, "traced replay must be clean");
    let journal = recorder.snapshot().expect("recorder is enabled");
    let registry = machine.metrics_registry();
    TraceArtifact {
        machine: machine.config().name.clone(),
        workload: format!("{workload:?}").to_lowercase(),
        ops: trace.records.len() as u64,
        journal,
        registry,
    }
}

/// Default timeline sampling interval: 10 ms of simulated time, fine
/// enough that a 25k-op replay yields hundreds of rows but coarse enough
/// that a `.tl` stays a few hundred KB.
pub fn default_sample_interval() -> SimDuration {
    SimDuration::from_millis(10)
}

/// Replays `ops` fixed-seed operations of `workload` through the
/// throughput machine with the flight recorder writing to `out` at
/// `interval` boundaries, and returns the sealed timeline's summary.
/// Same seed and machine as [`traced_replay`] (the span recorder itself
/// stays off — the timeline is the cheap always-on layer), so fixed-seed
/// timelines are byte-identical across hosts, repeats, and thread
/// settings.
///
/// # Errors
///
/// Filesystem errors creating or sealing the `.tl` file.
///
/// # Panics
///
/// Panics if the replay reports errors.
pub fn timeline_replay(
    workload: Workload,
    ops: u64,
    interval: SimDuration,
    out: &Path,
) -> std::io::Result<TimelineSummary> {
    let trace = GeneratorConfig::new(workload)
        .with_ops(ops as usize)
        .with_seed(TRACE_SEED)
        .with_max_live_bytes(4 << 20)
        .generate();
    let mut machine = throughput_machine();
    machine.enable_timeline_file(out, interval)?;
    let report = run_trace(&mut machine, &trace);
    assert_eq!(report.replay.errors, 0, "timeline replay must be clean");
    let summary = machine
        .finish_timeline()?
        .expect("timeline was enabled and must not have been dropped");
    Ok(summary)
}
