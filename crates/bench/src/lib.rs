//! Experiment harness: regenerates every table and figure derived from
//! the paper's quantitative claims.
//!
//! The paper (a HotOS position paper) has no numbered exhibits; DESIGN.md
//! assigns ids T1–T3 and F1–F8 to its quantitative claims. Each module in
//! [`exp`] regenerates one of them as text tables (and, where
//! figure-shaped, as `(x, y)` series embedded in the tables).
//!
//! Run them with:
//!
//! ```text
//! cargo run --release -p ssmc-bench --bin experiments -- all
//! cargo run --release -p ssmc-bench --bin experiments -- f2 f4
//! ```

pub mod alloc_sentinel;
pub mod baseline_policy;
pub mod exp;
pub mod obs_diff;
pub mod obs_trace;

use ssmc_sim::Table;

/// An experiment: id, one-line description, and the function that runs it.
pub struct Experiment {
    /// Identifier, e.g. `"f2"`.
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Runs the experiment, returning its tables.
    pub run: fn() -> Vec<Table>,
}

/// The registry of all experiments, in paper order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "t1",
            title: "§2 device characteristics: DRAM vs flash vs disk",
            run: exp::t1::run,
        },
        Experiment {
            id: "f1",
            title: "§2 technology trends: cost/density extrapolation and crossovers",
            run: exp::f1::run,
        },
        Experiment {
            id: "f2",
            title: "§3.3 write buffer: flash write traffic vs DRAM buffer size",
            run: exp::f2::run,
        },
        Experiment {
            id: "f3",
            title: "§3.3 banking: read latency under concurrent programs/erases",
            run: exp::f3::run,
        },
        Experiment {
            id: "f4",
            title: "§3.3 wear: erase distribution and lifetime by placement/GC policy",
            run: exp::f4::run,
        },
        Experiment {
            id: "f5",
            title: "§3.3 cleaning cost: write amplification vs utilisation",
            run: exp::f5::run,
        },
        Experiment {
            id: "t2",
            title: "§3.1 file systems: memory-resident vs disk-based on equal workloads",
            run: exp::t2::run,
        },
        Experiment {
            id: "f6",
            title: "§3.2 execute-in-place vs demand loading",
            run: exp::f6::run,
        },
        Experiment {
            id: "f7",
            title: "§4 sizing: DRAM:flash split under a fixed budget, per workload",
            run: exp::f7::run,
        },
        Experiment {
            id: "t3",
            title: "§3.1 battery failure: data at risk, recovery, holding times",
            run: exp::t3::run,
        },
        Experiment {
            id: "f8",
            title: "§3.1 copy-on-write mapped files vs copy-on-open",
            run: exp::f8::run,
        },
        Experiment {
            id: "a1",
            title: "ablation: write-buffer flush policy (absorption vs exposure)",
            run: exp::a1::run,
        },
        Experiment {
            id: "a2",
            title: "ablation: checkpointing overhead vs recovery time",
            run: exp::a2::run,
        },
        Experiment {
            id: "a3",
            title: "ablation: logical page size",
            run: exp::a3::run,
        },
    ]
}
