//! Slab/arena B-tree keyed by interned names.
//!
//! The DRAM directory index for the paper's memory-resident namespace.
//! A per-directory `HashMap<String, _>` tops out long before the
//! ROADMAP's millions-of-files target: every entry is a separate heap
//! string, iteration order is nondeterministic (lint rule D2), and churn
//! fragments the allocator. This B-tree stores fixed-fanout nodes in a
//! slab `Vec` — no per-entry boxing — and interns name bytes in a single
//! arena, so lookups compare against arena slices and allocate nothing.
//!
//! Determinism: iteration is in-order over byte-lexicographic keys, node
//! and span recycling are LIFO from plain `Vec` free lists, and nothing
//! depends on addresses or hashes — the same operation sequence always
//! produces the identical structure.
//!
//! Flat memory under churn: freed name spans are recycled through
//! exact-length buckets (names are at most [`MAX_NAME_LEN`] bytes, so
//! there are few buckets and a freed span can always be reused verbatim),
//! and freed nodes return to the slab's free list. A create/unlink cycle
//! at any population level leaves `arena_bytes` and the slab length
//! unchanged.

use std::cmp::Ordering;

/// Longest name the arena buckets handle, matching the on-flash dirent
/// limit ([`crate::layout::NAME_MAX`]).
pub const MAX_NAME_LEN: usize = crate::layout::NAME_MAX;

/// Minimum degree `t`: nodes hold `t-1 ..= 2t-1` keys (root exempt
/// below) and internal nodes `len+1` children.
const MIN_KEYS: usize = 7;
/// Maximum keys per node (`2t - 1` with `t = 8`).
const MAX_KEYS: usize = 2 * MIN_KEYS + 1;

/// An interned name: `len` bytes at `off` in the arena.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Span {
    off: u32,
    len: u8,
}

/// One B-tree node: fixed-size arrays in the slab, no per-entry boxes.
#[derive(Debug, Clone, Copy)]
struct Node<V> {
    len: u8,
    leaf: bool,
    keys: [Span; MAX_KEYS],
    vals: [V; MAX_KEYS],
    kids: [u32; MAX_KEYS + 1],
}

impl<V: Copy + Default> Node<V> {
    fn empty(leaf: bool) -> Self {
        Node {
            len: 0,
            leaf,
            keys: [Span::default(); MAX_KEYS],
            vals: [V::default(); MAX_KEYS],
            kids: [0; MAX_KEYS + 1],
        }
    }
}

/// A deterministic ordered map from short names to copyable values,
/// backed by a node slab and a name arena.
///
/// # Examples
///
/// ```
/// use ssmc_memfs::btree::BTreeIndex;
///
/// let mut idx: BTreeIndex<u64> = BTreeIndex::new();
/// idx.insert("alpha", 1);
/// idx.insert("beta", 2);
/// assert_eq!(idx.get("alpha"), Some(1));
/// assert_eq!(idx.remove("alpha"), Some(1));
/// assert_eq!(idx.get("alpha"), None);
/// assert_eq!(idx.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BTreeIndex<V> {
    nodes: Vec<Node<V>>,
    free_nodes: Vec<u32>,
    root: u32,
    /// Levels from root to leaves inclusive (1 = the root is a leaf).
    height: u32,
    len: usize,
    splits: u64,
    /// Interned name bytes; spans never straddle two names.
    arena: Vec<u8>,
    /// Freed span offsets bucketed by exact length (index = len), so
    /// reuse never fragments: a recycled span fits its new name exactly.
    free_spans: Vec<Vec<u32>>,
}

impl<V: Copy + Default> Default for BTreeIndex<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Default> BTreeIndex<V> {
    /// An empty index (one leaf root in the slab).
    pub fn new() -> Self {
        BTreeIndex {
            nodes: vec![Node::empty(true)],
            free_nodes: Vec::new(),
            root: 0,
            height: 1,
            len: 0,
            splits: 0,
            arena: Vec::new(),
            free_spans: (0..=MAX_NAME_LEN).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree depth in levels (1 = a lone leaf root). Lookups touch at most
    /// this many nodes, so an O(log n) bound is directly assertable.
    pub fn depth(&self) -> u32 {
        self.height
    }

    /// Cumulative node splits since creation.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Bytes held by the name arena (peak interned footprint; freed spans
    /// are recycled, so churn at a fixed population keeps this flat).
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Slab length in nodes (live + free-listed).
    pub fn node_slab_len(&self) -> usize {
        self.nodes.len()
    }

    fn key_bytes(&self, s: Span) -> &[u8] {
        &self.arena[s.off as usize..s.off as usize + s.len as usize]
    }

    /// First position whose key is `>= name`, and whether it is equal.
    fn search_pos(&self, x: u32, name: &[u8]) -> (usize, bool) {
        let node = &self.nodes[x as usize];
        for i in 0..node.len as usize {
            match self.key_bytes(node.keys[i]).cmp(name) {
                Ordering::Less => {}
                Ordering::Equal => return (i, true),
                Ordering::Greater => return (i, false),
            }
        }
        (node.len as usize, false)
    }

    /// Looks up `name`, allocation-free: the descent compares the probe
    /// against arena slices and copies out the value.
    // lint: hot-path
    pub fn get(&self, name: &str) -> Option<V> {
        let name = name.as_bytes();
        let mut x = self.root;
        loop {
            let (pos, found) = self.search_pos(x, name);
            let node = &self.nodes[x as usize];
            if found {
                return Some(node.vals[pos]);
            }
            if node.leaf {
                return None;
            }
            x = node.kids[pos];
        }
    }

    /// Interns `name`, reusing a freed same-length span when one exists.
    fn intern(&mut self, name: &[u8]) -> Span {
        debug_assert!(!name.is_empty() && name.len() <= MAX_NAME_LEN);
        let len = name.len();
        let off = match self.free_spans[len].pop() {
            Some(off) => {
                self.arena[off as usize..off as usize + len].copy_from_slice(name);
                off
            }
            None => {
                let off = self.arena.len() as u32;
                self.arena.extend_from_slice(name);
                off
            }
        };
        Span {
            off,
            len: len as u8,
        }
    }

    fn free_span(&mut self, s: Span) {
        self.free_spans[s.len as usize].push(s.off);
    }

    fn alloc_node(&mut self, leaf: bool) -> u32 {
        match self.free_nodes.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node::empty(leaf);
                i
            }
            None => {
                self.nodes.push(Node::empty(leaf));
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn free_node(&mut self, i: u32) {
        self.free_nodes.push(i);
    }

    /// Inserts `name → val`; returns the previous value if the name was
    /// already present (its span is reused, nothing re-interned).
    // lint: hot-path
    pub fn insert(&mut self, name: &str, val: V) -> Option<V> {
        let bytes = name.as_bytes();
        // Replace in place when present: one descent, no interning.
        let mut x = self.root;
        loop {
            let (pos, found) = self.search_pos(x, bytes);
            if found {
                let node = &mut self.nodes[x as usize];
                let old = node.vals[pos];
                node.vals[pos] = val;
                return Some(old);
            }
            let node = &self.nodes[x as usize];
            if node.leaf {
                break;
            }
            x = node.kids[pos];
        }
        let span = self.intern(bytes);
        if self.nodes[self.root as usize].len as usize == MAX_KEYS {
            let old_root = self.root;
            let new_root = self.alloc_node(false);
            self.nodes[new_root as usize].kids[0] = old_root;
            self.root = new_root;
            self.height += 1;
            self.split_child(new_root, 0);
        }
        self.insert_nonfull(self.root, span, val);
        self.len += 1;
        None
    }

    /// Splits the full child `kids[i]` of `parent`, promoting its median.
    fn split_child(&mut self, parent: u32, i: usize) {
        let child = self.nodes[parent as usize].kids[i];
        let cnode = self.nodes[child as usize];
        debug_assert_eq!(cnode.len as usize, MAX_KEYS);
        let right = self.alloc_node(cnode.leaf);
        {
            let r = &mut self.nodes[right as usize];
            r.len = MIN_KEYS as u8;
            r.keys[..MIN_KEYS].copy_from_slice(&cnode.keys[MIN_KEYS + 1..]);
            r.vals[..MIN_KEYS].copy_from_slice(&cnode.vals[MIN_KEYS + 1..]);
            if !cnode.leaf {
                r.kids[..MIN_KEYS + 1].copy_from_slice(&cnode.kids[MIN_KEYS + 1..]);
            }
        }
        self.nodes[child as usize].len = MIN_KEYS as u8;
        let p = &mut self.nodes[parent as usize];
        let plen = p.len as usize;
        p.keys.copy_within(i..plen, i + 1);
        p.vals.copy_within(i..plen, i + 1);
        p.kids.copy_within(i + 1..plen + 1, i + 2);
        p.keys[i] = cnode.keys[MIN_KEYS];
        p.vals[i] = cnode.vals[MIN_KEYS];
        p.kids[i + 1] = right;
        p.len += 1;
        self.splits += 1;
    }

    /// Standard top-down insert: every node descended into is non-full.
    fn insert_nonfull(&mut self, mut x: u32, span: Span, val: V) {
        // The probe's bytes live in the arena, which reallocates under
        // `self`; a stack copy sidesteps the aliasing.
        let mut probe = [0u8; MAX_NAME_LEN];
        let plen = span.len as usize;
        probe[..plen].copy_from_slice(self.key_bytes(span));
        let probe = &probe[..plen];
        loop {
            let (pos, found) = self.search_pos(x, probe);
            debug_assert!(!found, "duplicate insert handled by the replace descent");
            let node = &self.nodes[x as usize];
            if node.leaf {
                let node = &mut self.nodes[x as usize];
                let len = node.len as usize;
                node.keys.copy_within(pos..len, pos + 1);
                node.vals.copy_within(pos..len, pos + 1);
                node.keys[pos] = span;
                node.vals[pos] = val;
                node.len += 1;
                return;
            }
            let child = node.kids[pos];
            if self.nodes[child as usize].len as usize == MAX_KEYS {
                self.split_child(x, pos);
                // The promoted median sits at `pos` now; step right of it
                // when the new key sorts after it.
                let promoted = self.nodes[x as usize].keys[pos];
                let step = if self.key_bytes(promoted) < probe {
                    pos + 1
                } else {
                    pos
                };
                x = self.nodes[x as usize].kids[step];
            } else {
                x = child;
            }
        }
    }

    /// Removes `name`, returning its value; the span and any emptied
    /// nodes go back to the free lists.
    pub fn remove(&mut self, name: &str) -> Option<V> {
        let removed = self.remove_rec(self.root, name.as_bytes());
        if removed.is_some() {
            self.len -= 1;
            let r = self.root as usize;
            if self.nodes[r].len == 0 && !self.nodes[r].leaf {
                let old = self.root;
                self.root = self.nodes[r].kids[0];
                self.free_node(old);
                self.height -= 1;
            }
        }
        removed
    }

    /// CLRS-style preemptive delete: any node recursed into (other than
    /// the root) has at least `MIN_KEYS + 1` keys, so underflow repairs
    /// never propagate back up.
    fn remove_rec(&mut self, x: u32, name: &[u8]) -> Option<V> {
        let (pos, found) = self.search_pos(x, name);
        let leaf = self.nodes[x as usize].leaf;
        if found {
            if leaf {
                let (span, val) = self.remove_at_leaf(x, pos);
                self.free_span(span);
                return Some(val);
            }
            let left = self.nodes[x as usize].kids[pos];
            let right = self.nodes[x as usize].kids[pos + 1];
            if self.nodes[left as usize].len as usize > MIN_KEYS {
                let (span, val) = self.pop_max(left);
                let node = &mut self.nodes[x as usize];
                let (old_span, old_val) = (node.keys[pos], node.vals[pos]);
                node.keys[pos] = span;
                node.vals[pos] = val;
                self.free_span(old_span);
                Some(old_val)
            } else if self.nodes[right as usize].len as usize > MIN_KEYS {
                let (span, val) = self.pop_min(right);
                let node = &mut self.nodes[x as usize];
                let (old_span, old_val) = (node.keys[pos], node.vals[pos]);
                node.keys[pos] = span;
                node.vals[pos] = val;
                self.free_span(old_span);
                Some(old_val)
            } else {
                self.merge_children(x, pos);
                self.remove_rec(left, name)
            }
        } else if leaf {
            None
        } else {
            let child = self.ensure_child(x, pos);
            self.remove_rec(child, name)
        }
    }

    /// Removes and returns the leaf entry at `pos`.
    fn remove_at_leaf(&mut self, x: u32, pos: usize) -> (Span, V) {
        let node = &mut self.nodes[x as usize];
        debug_assert!(node.leaf);
        let len = node.len as usize;
        let out = (node.keys[pos], node.vals[pos]);
        node.keys.copy_within(pos + 1..len, pos);
        node.vals.copy_within(pos + 1..len, pos);
        node.len -= 1;
        out
    }

    /// Detaches the maximum entry of the subtree at `x` (span not freed:
    /// the caller reuses it as a separator).
    fn pop_max(&mut self, mut x: u32) -> (Span, V) {
        loop {
            if self.nodes[x as usize].leaf {
                let len = self.nodes[x as usize].len as usize;
                return self.remove_at_leaf(x, len - 1);
            }
            let pos = self.nodes[x as usize].len as usize;
            x = self.ensure_child(x, pos);
        }
    }

    /// Detaches the minimum entry of the subtree at `x`.
    fn pop_min(&mut self, mut x: u32) -> (Span, V) {
        loop {
            if self.nodes[x as usize].leaf {
                return self.remove_at_leaf(x, 0);
            }
            x = self.ensure_child(x, 0);
        }
    }

    /// Guarantees the child to descend into has more than `MIN_KEYS`
    /// keys, borrowing from a rich sibling or merging with a poor one.
    /// Returns the node to descend into (the merge target when the child
    /// was absorbed leftward).
    fn ensure_child(&mut self, x: u32, i: usize) -> u32 {
        let child = self.nodes[x as usize].kids[i];
        if self.nodes[child as usize].len as usize > MIN_KEYS {
            return child;
        }
        let xlen = self.nodes[x as usize].len as usize;
        if i > 0 {
            let lsib = self.nodes[x as usize].kids[i - 1];
            if self.nodes[lsib as usize].len as usize > MIN_KEYS {
                self.rotate_into_right(x, i - 1);
                return child;
            }
        }
        if i < xlen {
            let rsib = self.nodes[x as usize].kids[i + 1];
            if self.nodes[rsib as usize].len as usize > MIN_KEYS {
                self.rotate_into_left(x, i);
                return child;
            }
        }
        if i < xlen {
            self.merge_children(x, i);
            child
        } else {
            self.merge_children(x, i - 1);
            self.nodes[x as usize].kids[i - 1]
        }
    }

    /// Moves one entry from `kids[k]` through separator `k` into
    /// `kids[k+1]` (right rotation around the separator).
    fn rotate_into_right(&mut self, x: u32, k: usize) {
        let left = self.nodes[x as usize].kids[k];
        let right = self.nodes[x as usize].kids[k + 1];
        let sep = (self.nodes[x as usize].keys[k], self.nodes[x as usize].vals[k]);
        let lnode = self.nodes[left as usize];
        let llen = lnode.len as usize;
        {
            let r = &mut self.nodes[right as usize];
            let rlen = r.len as usize;
            r.keys.copy_within(0..rlen, 1);
            r.vals.copy_within(0..rlen, 1);
            r.kids.copy_within(0..rlen + 1, 1);
            r.keys[0] = sep.0;
            r.vals[0] = sep.1;
            if !r.leaf {
                r.kids[0] = lnode.kids[llen];
            }
            r.len += 1;
        }
        let p = &mut self.nodes[x as usize];
        p.keys[k] = lnode.keys[llen - 1];
        p.vals[k] = lnode.vals[llen - 1];
        self.nodes[left as usize].len -= 1;
    }

    /// Moves one entry from `kids[k+1]` through separator `k` into
    /// `kids[k]` (left rotation around the separator).
    fn rotate_into_left(&mut self, x: u32, k: usize) {
        let left = self.nodes[x as usize].kids[k];
        let right = self.nodes[x as usize].kids[k + 1];
        let sep = (self.nodes[x as usize].keys[k], self.nodes[x as usize].vals[k]);
        let rnode = self.nodes[right as usize];
        let rlen = rnode.len as usize;
        {
            let l = &mut self.nodes[left as usize];
            let llen = l.len as usize;
            l.keys[llen] = sep.0;
            l.vals[llen] = sep.1;
            if !l.leaf {
                l.kids[llen + 1] = rnode.kids[0];
            }
            l.len += 1;
        }
        {
            let p = &mut self.nodes[x as usize];
            p.keys[k] = rnode.keys[0];
            p.vals[k] = rnode.vals[0];
        }
        let r = &mut self.nodes[right as usize];
        r.keys.copy_within(1..rlen, 0);
        r.vals.copy_within(1..rlen, 0);
        r.kids.copy_within(1..rlen + 1, 0);
        r.len -= 1;
    }

    /// Merges `kids[k]`, separator `k`, and `kids[k+1]` into `kids[k]`;
    /// the right node returns to the slab free list.
    fn merge_children(&mut self, x: u32, k: usize) {
        let left = self.nodes[x as usize].kids[k];
        let right = self.nodes[x as usize].kids[k + 1];
        let sep = (self.nodes[x as usize].keys[k], self.nodes[x as usize].vals[k]);
        let rnode = self.nodes[right as usize];
        let rlen = rnode.len as usize;
        {
            let l = &mut self.nodes[left as usize];
            let llen = l.len as usize;
            l.keys[llen] = sep.0;
            l.vals[llen] = sep.1;
            l.keys[llen + 1..llen + 1 + rlen].copy_from_slice(&rnode.keys[..rlen]);
            l.vals[llen + 1..llen + 1 + rlen].copy_from_slice(&rnode.vals[..rlen]);
            if !l.leaf {
                l.kids[llen + 1..llen + 2 + rlen].copy_from_slice(&rnode.kids[..rlen + 1]);
            }
            l.len = (llen + 1 + rlen) as u8;
        }
        let p = &mut self.nodes[x as usize];
        let plen = p.len as usize;
        p.keys.copy_within(k + 1..plen, k);
        p.vals.copy_within(k + 1..plen, k);
        p.kids.copy_within(k + 2..plen + 1, k + 1);
        p.len -= 1;
        self.free_node(right);
    }

    /// In-order traversal (byte-lexicographic name order).
    pub fn for_each(&self, mut f: impl FnMut(&str, V)) {
        self.for_each_rec(self.root, &mut f);
    }

    fn for_each_rec(&self, x: u32, f: &mut impl FnMut(&str, V)) {
        let node = &self.nodes[x as usize];
        for i in 0..node.len as usize {
            if !node.leaf {
                self.for_each_rec(node.kids[i], f);
            }
            let name = std::str::from_utf8(self.key_bytes(node.keys[i]))
                .expect("interned names are UTF-8");
            f(name, node.vals[i]);
        }
        if !node.leaf {
            self.for_each_rec(node.kids[node.len as usize], f);
        }
    }

    /// Test support: panics if any B-tree invariant is violated (key
    /// order, node fill bounds, uniform leaf depth, entry count).
    pub fn check_invariants(&self) {
        let mut count = 0usize;
        let mut prev: Option<Vec<u8>> = None;
        self.check_rec(self.root, 1, &mut count, &mut prev);
        assert_eq!(count, self.len, "entry count diverged from len()");
    }

    fn check_rec(&self, x: u32, depth: u32, count: &mut usize, prev: &mut Option<Vec<u8>>) {
        let node = &self.nodes[x as usize];
        let len = node.len as usize;
        assert!(len <= MAX_KEYS, "node over-full");
        if x != self.root {
            assert!(len >= MIN_KEYS, "non-root node under-filled: {len}");
        }
        if node.leaf {
            assert_eq!(depth, self.height, "leaf at wrong depth");
        }
        for i in 0..len {
            if !node.leaf {
                self.check_rec(node.kids[i], depth + 1, count, prev);
            }
            let key = self.key_bytes(node.keys[i]);
            if let Some(p) = prev {
                assert!(p.as_slice() < key, "keys out of order");
            }
            *prev = Some(key.to_vec());
            *count += 1;
        }
        if !node.leaf {
            self.check_rec(node.kids[len], depth + 1, count, prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(i: u32) -> String {
        format!("n{i:06}")
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut idx: BTreeIndex<u32> = BTreeIndex::new();
        for i in 0..500 {
            assert_eq!(idx.insert(&name(i), i), None);
        }
        idx.check_invariants();
        assert_eq!(idx.len(), 500);
        assert!(idx.depth() > 1, "500 entries must split the root");
        assert!(idx.splits() > 0);
        for i in 0..500 {
            assert_eq!(idx.get(&name(i)), Some(i), "lookup {i}");
        }
        assert_eq!(idx.get("missing"), None);
        for i in 0..500 {
            assert_eq!(idx.remove(&name(i)), Some(i), "remove {i}");
            assert_eq!(idx.remove(&name(i)), None, "double remove {i}");
        }
        idx.check_invariants();
        assert!(idx.is_empty());
        assert_eq!(idx.depth(), 1, "empty tree collapses to a lone root");
    }

    #[test]
    fn insert_replaces_and_returns_old_value() {
        let mut idx: BTreeIndex<u32> = BTreeIndex::new();
        assert_eq!(idx.insert("dup", 1), None);
        let arena_after_first = idx.arena_bytes();
        assert_eq!(idx.insert("dup", 2), Some(1));
        assert_eq!(idx.get("dup"), Some(2));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.arena_bytes(), arena_after_first, "replace re-interns nothing");
    }

    #[test]
    fn iteration_is_in_name_order() {
        let mut idx: BTreeIndex<u32> = BTreeIndex::new();
        // Insert in descending order; traversal must come back ascending.
        for i in (0..200).rev() {
            idx.insert(&name(i), i);
        }
        let mut seen = Vec::new();
        idx.for_each(|n, v| seen.push((n.to_owned(), v)));
        let expected: Vec<(String, u32)> = (0..200).map(|i| (name(i), i)).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn churn_keeps_arena_and_slab_flat() {
        let mut idx: BTreeIndex<u32> = BTreeIndex::new();
        for i in 0..300 {
            idx.insert(&name(i), i);
        }
        let arena = idx.arena_bytes();
        let slab = idx.node_slab_len();
        for round in 0..5 {
            for i in 0..300 {
                assert_eq!(idx.remove(&name(i)), Some(i), "round {round}");
            }
            for i in 0..300 {
                idx.insert(&name(i), i);
            }
            idx.check_invariants();
        }
        assert_eq!(idx.arena_bytes(), arena, "arena grew under churn");
        assert_eq!(idx.node_slab_len(), slab, "node slab grew under churn");
    }

    #[test]
    fn interleaved_removal_patterns_hold_invariants() {
        // Odd-entry removal exercises borrows and merges at every level.
        let mut idx: BTreeIndex<u32> = BTreeIndex::new();
        for i in 0..1000 {
            idx.insert(&name(i), i);
        }
        for i in (1..1000).step_by(2) {
            assert_eq!(idx.remove(&name(i)), Some(i));
        }
        idx.check_invariants();
        for i in (0..1000).step_by(2) {
            assert_eq!(idx.get(&name(i)), Some(i));
        }
        for i in (1..1000).step_by(2) {
            assert_eq!(idx.get(&name(i)), None);
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        let mut idx: BTreeIndex<u32> = BTreeIndex::new();
        for i in 0..20_000 {
            idx.insert(&name(i), i);
        }
        // With t = 8, 20k entries fit in ceil(log_8 20e3) + 1 ≈ 6 levels.
        assert!(idx.depth() <= 6, "depth {} too deep for 20k", idx.depth());
        idx.check_invariants();
    }
}
