//! The memory-resident file system (§3.1 of the paper).
//!
//! Everything the paper says a solid-state file system can discard, this
//! one discards:
//!
//! * **No buffer cache.** All data and metadata are directly addressable;
//!   reads go straight to the DRAM write buffer or to flash.
//! * **No clustering.** There are no seeks to optimise for.
//! * **No indirect blocks.** Files live in a 64-bit single-level page
//!   space: file `ino`'s page `i` is logical page `(ino << 32) | i`, so
//!   byte offsets translate to pages arithmetically. The sparse page map
//!   in the storage manager plays the role the paper assigns to the
//!   single-level store.
//! * **Copy-on-write.** Files resident in flash are read (and mapped) in
//!   place; only the pages an application actually writes are copied to
//!   DRAM (experiment F8 measures this against copy-on-open).
//!
//! Metadata — a superblock, a flat inode table, and directories holding
//! fixed-size entries — is stored in the same logical page space through
//! the same storage manager, so it enjoys the same write buffering and
//! survives the same crashes. After a battery failure, [`MemFs::recover`]
//! runs the storage-level recovery and then a small fsck that drops
//! dangling directory entries and frees orphaned inodes.

#![forbid(unsafe_code)]

pub mod btree;
pub mod error;
pub mod fs;
pub mod layout;

pub use error::FsError;
pub use fs::{FileMap, FsMetrics, FsckReport, MemFs, OpenMode, Stat, WritePolicy};
pub use layout::{DirEntry, Ino, Inode, InodeKind, ROOT_INO};

/// Result alias for file-system operations.
pub type Result<T> = core::result::Result<T, FsError>;
