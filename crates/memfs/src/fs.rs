//! The memory-resident file system proper.

use crate::btree::BTreeIndex;
use crate::error::FsError;
use crate::layout::{
    file_page, split_path, window, DirEntry, Ino, Inode, InodeKind, Superblock, DIRENT_BYTES,
    INODE_BYTES, ROOT_INO,
};
use crate::Result;
use ssmc_sim::obs::{EventKind, MetricsRegistry, Recorder, Span};
use ssmc_sim::timeline::SampleBuf;
use ssmc_sim::Energy;
use ssmc_storage::{PageId, RecoveryReport, StorageManager};
// lint: allow(D2): the fsck maps/sets below are keyed-access or
// membership-only; the per-site directives argue each use.
use std::collections::{HashMap, HashSet, VecDeque};

/// DRAM-resident index of one directory: a deterministic B-tree mapping
/// name → (slot, ino) with names interned in its arena, plus the freed
/// dirent slots available for reuse (LIFO, matching the slot-scan order
/// the pre-index implementation produced).
#[derive(Debug, Default)]
struct DirIndex {
    names: BTreeIndex<(u64, Ino)>,
    free_slots: Vec<u64>,
    /// How many index entries claim each slot. Normally 0 or 1, but a
    /// stale entry (e.g. left behind when an error path gave a live slot
    /// back to `free_slots`) can alias a reused slot. Zeroing a slot must
    /// then drop *every* claimant — the pre-B-tree `HashMap::retain` by
    /// slot did exactly that, and replayed results depend on it — so this
    /// counter tells `remove_slot_entries` when the rare healing scan is
    /// needed without an O(n) walk per delete.
    slot_rc: Vec<u32>,
}

impl DirIndex {
    fn bump_slot(&mut self, slot: u64) {
        let i = slot as usize;
        if self.slot_rc.len() <= i {
            self.slot_rc.resize(i + 1, 0);
        }
        self.slot_rc[i] += 1;
    }

    fn drop_slot(&mut self, slot: u64) {
        self.slot_rc[slot as usize] -= 1;
    }

    fn slot_claims(&self, slot: u64) -> u32 {
        self.slot_rc.get(slot as usize).copied().unwrap_or(0)
    }

    /// Records `name → (slot, ino)`, keeping the claim counts exact when
    /// the insert overwrites an entry pointing at another slot.
    fn insert(&mut self, name: &str, slot: u64, ino: Ino) {
        if let Some((old_slot, _)) = self.names.insert(name, (slot, ino)) {
            self.drop_slot(old_slot);
        }
        self.bump_slot(slot);
    }

    /// Removes every index entry claiming `slot` — the exact semantics of
    /// the historical `names.retain(|_, (s, _)| *s != slot)`, which kept
    /// the index self-healing when a stale alias pointed at a reused
    /// slot. `name_hint` (the caller's lookup result or the on-flash
    /// entry name) covers the common single-claimant case in O(log n);
    /// only genuine aliases pay the full scan.
    fn remove_slot_entries(&mut self, slot: u64, name_hint: &str) {
        if let Some((s, _)) = self.names.get(name_hint) {
            if s == slot {
                self.names.remove(name_hint);
                self.drop_slot(slot);
            }
        }
        if self.slot_claims(slot) > 0 {
            let mut stale = Vec::new();
            self.names.for_each(|n, (s, _)| {
                if s == slot {
                    stale.push(n.to_owned());
                }
            });
            for n in &stale {
                self.names.remove(n);
                self.drop_slot(slot);
            }
        }
    }
}

/// How a descriptor was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Reads only.
    Read,
    /// Reads and writes.
    Write,
}

/// What happens when a flash-resident file is opened for writing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// §3.1's recommendation: leave the file in flash and copy *only the
    /// pages actually written* into DRAM.
    CopyOnWrite,
    /// The conventional alternative F8 compares against: copy the whole
    /// file into primary storage when it is opened writable.
    CopyOnOpen,
}

/// Result of `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// File or directory.
    pub kind: InodeKind,
    /// Size in bytes.
    pub size: u64,
    /// Last modification, nanoseconds of simulated time.
    pub mtime_ns: u64,
}

/// Mapping handle for the VM layer: the file's logical pages in order.
#[derive(Debug, Clone)]
pub struct FileMap {
    /// The mapped inode.
    pub ino: Ino,
    /// File size in bytes.
    pub size: u64,
    /// Logical page ids covering the file.
    pub pages: Vec<PageId>,
}

/// File-system level counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsMetrics {
    /// Files and directories created.
    pub creates: u64,
    /// Files and directories removed.
    pub deletes: u64,
    /// Read calls served.
    pub reads: u64,
    /// Write calls served.
    pub writes: u64,
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Bytes accepted by writes.
    pub bytes_written: u64,
    /// Bytes copied into DRAM by the copy-on-open policy.
    pub copy_on_open_bytes: u64,
}

/// Outcome of the post-recovery consistency pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Directory entries dropped because their inode did not survive.
    pub dangling_entries: u64,
    /// Allocated inodes unreachable from the root, freed.
    pub orphans_freed: u64,
    /// File link counts corrected to match surviving references.
    pub nlinks_repaired: u64,
    /// Whether the root directory had to be recreated.
    pub root_rebuilt: bool,
}

/// The memory-resident file system over a [`StorageManager`].
///
/// # Examples
///
/// ```
/// use ssmc_memfs::{MemFs, OpenMode, WritePolicy};
/// use ssmc_sim::Clock;
/// use ssmc_storage::{StorageConfig, StorageManager};
///
/// let sm = StorageManager::new(StorageConfig::default(), Clock::shared());
/// let mut fs = MemFs::new(sm, WritePolicy::CopyOnWrite).unwrap();
/// fs.mkdir("/docs").unwrap();
/// let fd = fs.create("/docs/hello").unwrap();
/// fs.write(fd, 0, b"single-level store").unwrap();
/// let mut buf = [0u8; 18];
/// fs.read(fd, 0, &mut buf).unwrap();
/// assert_eq!(&buf, b"single-level store");
/// ```
#[derive(Debug)]
pub struct MemFs {
    sm: StorageManager,
    policy: WritePolicy,
    next_fd: u64,
    /// Descriptor table, indexed directly by fd (descriptors are issued
    /// sequentially, so the table is dense).
    fds: Vec<Option<(Ino, OpenMode)>>,
    /// Open descriptors per inode, slab-indexed by ino (inos are issued
    /// sequentially and recycled, so the slab stays population-sized).
    /// Kept exactly in sync with `fds` so [`Self::remove_inode`] can
    /// invalidate a dead inode's descriptors without scanning the whole
    /// descriptor table — that scan is O(descriptors ever issued) and
    /// turns long replays quadratic in their delete count. The inner
    /// vectors keep their capacity across inode recycling.
    ino_fds: Vec<Vec<u64>>,
    free_inos: Vec<Ino>,
    next_ino: Ino,
    metrics: FsMetrics,
    /// DRAM-resident directory index, slab-indexed by the directory's ino
    /// (inos are issued sequentially). The paper's single-level store makes
    /// directories memory-resident; this is the in-memory structure a real
    /// implementation would use instead of a buffer cache, maintained
    /// incrementally and rebuilt at mount and by fsck from the durable
    /// slot layout. Each directory's index is a [`BTreeIndex`] probing
    /// arena-interned keys by `&str`, so path resolution allocates
    /// nothing and stays O(log n) at million-entry populations.
    dirs: Vec<Option<DirIndex>>,
    /// Recycled page-sized scratch buffer for sub-page reads and RMW.
    scratch: Vec<u8>,
    recorder: Recorder,
}

impl MemFs {
    /// Mounts an existing file system or formats a fresh one.
    ///
    /// # Errors
    ///
    /// Propagates storage errors during format/mount.
    pub fn new(sm: StorageManager, policy: WritePolicy) -> Result<MemFs> {
        let mut fs = MemFs {
            sm,
            policy,
            next_fd: 3,
            fds: Vec::new(),
            ino_fds: Vec::new(),
            free_inos: Vec::new(),
            next_ino: ROOT_INO + 1,
            metrics: FsMetrics::default(),
            dirs: Vec::new(),
            scratch: Vec::new(),
            recorder: Recorder::disabled(),
        };
        match fs.read_superblock()? {
            Some(sb) => {
                fs.next_ino = sb.next_ino;
                fs.rebuild_free_list()?;
                fs.rebuild_dindex()?;
            }
            None => fs.format()?,
        }
        Ok(fs)
    }

    /// The storage manager underneath (metrics, wear, energy).
    pub fn storage(&self) -> &StorageManager {
        &self.sm
    }

    /// Mutable access to the storage manager (policy experiments).
    pub fn storage_mut(&mut self) -> &mut StorageManager {
        &mut self.sm
    }

    /// File-system counters.
    pub fn metrics(&self) -> FsMetrics {
        self.metrics
    }

    /// Installs an observability recorder here and in the storage stack
    /// below (storage manager and flash device).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.sm.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Folds the file-system counters — and everything below them — into
    /// the unified registry.
    pub fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter("fs.creates", self.metrics.creates);
        reg.counter("fs.deletes", self.metrics.deletes);
        reg.counter("fs.reads", self.metrics.reads);
        reg.counter("fs.writes", self.metrics.writes);
        reg.counter("fs.bytes_read", self.metrics.bytes_read);
        reg.counter("fs.bytes_written", self.metrics.bytes_written);
        reg.counter("fs.copy_on_open_bytes", self.metrics.copy_on_open_bytes);
        let (depth, splits) = self.dindex_stats();
        reg.counter("fs.dindex_splits", splits);
        reg.gauge("fs.dindex_depth", f64::from(depth));
        self.sm.publish_metrics(reg);
    }

    /// Timeline channels for the file system and everything below it.
    /// Name closures only run during the registration pass.
    pub fn sample_timeline(&self, buf: &mut SampleBuf) {
        buf.counter(|| "fs.creates".into(), self.metrics.creates);
        buf.counter(|| "fs.deletes".into(), self.metrics.deletes);
        buf.counter(|| "fs.reads".into(), self.metrics.reads);
        buf.counter(|| "fs.writes".into(), self.metrics.writes);
        buf.counter(|| "fs.bytes_read".into(), self.metrics.bytes_read);
        buf.counter(|| "fs.bytes_written".into(), self.metrics.bytes_written);
        buf.counter(
            || "fs.copy_on_open_bytes".into(),
            self.metrics.copy_on_open_bytes,
        );
        let (depth, splits) = self.dindex_stats();
        buf.counter(|| "fs.dindex_splits".into(), splits);
        buf.gauge(|| "fs.dindex_depth".into(), f64::from(depth));
        self.sm.sample_timeline(buf);
    }

    /// Directory-index shape: (max B-tree depth across directories, total
    /// node splits). Depth bounds every lookup's node count, so the scale
    /// tests assert O(log n) directly from this.
    pub fn dindex_stats(&self) -> (u32, u64) {
        let mut depth = 0u32;
        let mut splits = 0u64;
        for d in self.dirs.iter().flatten() {
            depth = depth.max(d.names.depth());
            splits += d.names.splits();
        }
        (depth, splits)
    }

    /// Directory-index memory footprint: (name-arena bytes, slab nodes)
    /// summed across directories. Steady-state churn must keep both flat
    /// — freed spans and nodes are reused, never leaked.
    pub fn dindex_footprint(&self) -> (u64, u64) {
        let mut arena = 0u64;
        let mut nodes = 0u64;
        for d in self.dirs.iter().flatten() {
            arena += d.names.arena_bytes() as u64;
            nodes += d.names.node_slab_len() as u64;
        }
        (arena, nodes)
    }

    /// The write policy in force.
    pub fn write_policy(&self) -> WritePolicy {
        self.policy
    }

    fn page_size(&self) -> u64 {
        self.sm.page_size()
    }

    fn now_ns(&self) -> u64 {
        self.sm.now().as_nanos()
    }

    // ------------------------------------------------------------------
    // Low-level page helpers
    // ------------------------------------------------------------------

    /// Reads a page into the recycled scratch buffer and hands it over.
    /// Callers return it with [`MemFs::put_buf`] when done; `read_page`
    /// overwrites every byte, so stale contents never leak through.
    // lint: hot-path
    fn read_page_buf(&mut self, page: PageId) -> Result<Vec<u8>> {
        let mut buf = std::mem::take(&mut self.scratch);
        let ps = self.page_size() as usize;
        if buf.len() != ps {
            buf.clear();
            buf.resize(ps, 0);
        }
        self.sm.read_page(page, &mut buf)?;
        Ok(buf)
    }

    /// Returns a buffer from [`MemFs::read_page_buf`] for reuse.
    fn put_buf(&mut self, buf: Vec<u8>) {
        self.scratch = buf;
    }

    /// Read-modify-write of a sub-page byte range.
    // lint: hot-path
    fn rmw(&mut self, page: PageId, offset: usize, bytes: &[u8]) -> Result<()> {
        // Buffer-resident pages (hot inode/dirent pages, recently written
        // data) update in place: same simulated full-page RMW charge,
        // none of the two page-sized staging copies.
        if self.sm.modify_page_in_place(page, offset as u64, bytes)? {
            return Ok(());
        }
        let mut buf = self.read_page_buf(page)?;
        buf[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.sm.write_page(page, &buf)?;
        self.put_buf(buf);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Metadata: superblock and inode table
    // ------------------------------------------------------------------

    fn read_superblock(&mut self) -> Result<Option<Superblock>> {
        if !self.sm.contains(window(0)) {
            return Ok(None);
        }
        match self.sm.read_page_ref(window(0))? {
            Some(page) => Ok(Superblock::decode(page)),
            None => Ok(None),
        }
    }

    fn write_superblock(&mut self) -> Result<()> {
        let mut page = vec![0u8; self.page_size() as usize];
        Superblock {
            magic: crate::layout::MAGIC,
            next_ino: self.next_ino,
        }
        .encode_into(&mut page);
        self.sm.write_page(window(0), &page)?;
        Ok(())
    }

    fn inodes_per_page(&self) -> u64 {
        self.page_size() / INODE_BYTES as u64
    }

    fn inode_loc(&self, ino: Ino) -> (PageId, usize) {
        let per = self.inodes_per_page();
        let page = window(0) + 1 + ino as u64 / per;
        let offset = (ino as u64 % per) as usize * INODE_BYTES;
        (page, offset)
    }

    // lint: hot-path
    fn read_inode(&mut self, ino: Ino) -> Result<Inode> {
        let (page, offset) = self.inode_loc(ino);
        // Decode straight from the storage borrow: same simulated charge
        // as a full page read, none of the page-sized memcpy.
        match self.sm.read_page_ref(page)? {
            Some(buf) => Ok(Inode::decode(&buf[offset..offset + INODE_BYTES])),
            None => Ok(Inode::decode(&[0u8; INODE_BYTES])),
        }
    }

    fn write_inode(&mut self, ino: Ino, inode: &Inode) -> Result<()> {
        let (page, offset) = self.inode_loc(ino);
        self.rmw(page, offset, &inode.encode())
    }

    fn alloc_ino(&mut self) -> Result<Ino> {
        if let Some(ino) = self.free_inos.pop() {
            return Ok(ino);
        }
        if self.next_ino == Ino::MAX {
            return Err(FsError::TooManyFiles);
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        self.write_superblock()?;
        Ok(ino)
    }

    fn format(&mut self) -> Result<()> {
        self.next_ino = ROOT_INO + 1;
        self.free_inos.clear();
        self.write_superblock()?;
        let root = Inode::new(InodeKind::Dir, self.now_ns());
        self.write_inode(ROOT_INO, &root)?;
        Ok(())
    }

    fn rebuild_free_list(&mut self) -> Result<()> {
        self.free_inos.clear();
        for ino in (ROOT_INO + 1)..self.next_ino {
            if self.read_inode(ino)?.kind == InodeKind::Free {
                self.free_inos.push(ino);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Directories
    // ------------------------------------------------------------------

    fn dir_slots(&self, dir_size: u64) -> u64 {
        dir_size / DIRENT_BYTES as u64
    }

    fn dirent_loc(&self, dir: Ino, slot: u64) -> (PageId, usize) {
        let per_page = self.page_size() / DIRENT_BYTES as u64;
        (
            file_page(dir, slot / per_page),
            (slot % per_page) as usize * DIRENT_BYTES,
        )
    }

    fn read_dirent(&mut self, dir: Ino, slot: u64) -> Result<Option<DirEntry>> {
        let (page, offset) = self.dirent_loc(dir, slot);
        match self.sm.read_page_ref(page)? {
            Some(buf) => Ok(DirEntry::decode(&buf[offset..offset + DIRENT_BYTES])),
            None => Ok(DirEntry::decode(&[0u8; DIRENT_BYTES])),
        }
    }

    fn write_dirent_slot(&mut self, dir: Ino, slot: u64, bytes: &[u8; DIRENT_BYTES]) -> Result<()> {
        let (page, offset) = self.dirent_loc(dir, slot);
        self.rmw(page, offset, bytes)
    }

    /// All live entries of a directory.
    fn dir_entries(&mut self, dir: Ino, dir_size: u64) -> Result<Vec<(u64, DirEntry)>> {
        let mut out = Vec::new();
        for slot in 0..self.dir_slots(dir_size) {
            if let Some(e) = self.read_dirent(dir, slot)? {
                out.push((slot, e));
            }
        }
        Ok(out)
    }

    /// The directory's DRAM index, created on first use.
    fn dir_index_mut(&mut self, dir: Ino) -> &mut DirIndex {
        let idx = dir as usize;
        if self.dirs.len() <= idx {
            self.dirs.resize_with(idx + 1, || None);
        }
        self.dirs[idx].get_or_insert_with(DirIndex::default)
    }

    // lint: hot-path
    fn dir_lookup(&mut self, dir: Ino, _dir_size: u64, name: &str) -> Result<Option<(u64, Ino)>> {
        Ok(self
            .dirs
            .get(dir as usize)
            .and_then(|d| d.as_ref())
            .and_then(|d| d.names.get(name)))
    }

    /// Rebuilds the DRAM directory index and free-slot lists by scanning
    /// the durable slot layout (mount and post-recovery path; charges the
    /// page reads a real scan would).
    fn rebuild_dindex(&mut self) -> Result<()> {
        self.dirs.clear();
        let mut queue: VecDeque<Ino> = VecDeque::new();
        queue.push_back(ROOT_INO);
        // lint: allow(D2): membership test only; traversal order comes
        // from the BFS queue, which is seeded and extended in dirent
        // slot order.
        let mut seen: HashSet<Ino> = HashSet::new();
        seen.insert(ROOT_INO);
        while let Some(dir) = queue.pop_front() {
            let size = self.read_inode(dir)?.size;
            for slot in 0..self.dir_slots(size) {
                match self.read_dirent(dir, slot)? {
                    Some(e) => {
                        let target = self.read_inode(e.ino)?;
                        if target.kind == InodeKind::Dir && seen.insert(e.ino) {
                            queue.push_back(e.ino);
                        }
                        self.dir_index_mut(dir).insert(&e.name, slot, e.ino);
                    }
                    None => {
                        self.dir_index_mut(dir).free_slots.push(slot);
                    }
                }
            }
        }
        Ok(())
    }

    // lint: hot-path
    fn dir_add(&mut self, dir: Ino, entry: &DirEntry) -> Result<()> {
        // Reuse a freed slot if one exists, else append.
        let reused = self.dir_index_mut(dir).free_slots.pop();
        let slot = match reused {
            Some(slot) => {
                self.write_dirent_slot(dir, slot, &entry.encode())?;
                slot
            }
            None => {
                let mut inode = self.read_inode(dir)?;
                let slot = self.dir_slots(inode.size);
                self.write_dirent_slot(dir, slot, &entry.encode())?;
                inode.size += DIRENT_BYTES as u64;
                inode.mtime_ns = self.now_ns();
                self.write_inode(dir, &inode)?;
                slot
            }
        };
        self.dir_index_mut(dir).insert(&entry.name, slot, entry.ino);
        Ok(())
    }

    fn dir_remove_slot(&mut self, dir: Ino, slot: u64, name: &str) -> Result<()> {
        self.write_dirent_slot(dir, slot, &[0u8; DIRENT_BYTES])?;
        let d = self.dir_index_mut(dir);
        d.remove_slot_entries(slot, name);
        d.free_slots.push(slot);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Path resolution
    // ------------------------------------------------------------------

    /// Resolves a path to its inode.
    fn resolve(&mut self, path: &str) -> Result<Ino> {
        let parts = split_path(path).ok_or(FsError::BadPath)?;
        let mut cur = ROOT_INO;
        for part in parts {
            let inode = self.read_inode(cur)?;
            if inode.kind != InodeKind::Dir {
                return Err(FsError::NotDir);
            }
            let Some((_, next)) = self.dir_lookup(cur, inode.size, part)? else {
                return Err(FsError::NotFound);
            };
            cur = next;
        }
        Ok(cur)
    }

    /// Resolves a path to `(parent_dir, leaf_name)`.
    fn resolve_parent<'p>(&mut self, path: &'p str) -> Result<(Ino, &'p str)> {
        let parts = split_path(path).ok_or(FsError::BadPath)?;
        let (&leaf, dirs) = parts.split_last().ok_or(FsError::BadPath)?;
        let mut cur = ROOT_INO;
        for part in dirs {
            let inode = self.read_inode(cur)?;
            if inode.kind != InodeKind::Dir {
                return Err(FsError::NotDir);
            }
            let Some((_, next)) = self.dir_lookup(cur, inode.size, part)? else {
                return Err(FsError::NotFound);
            };
            cur = next;
        }
        if self.read_inode(cur)?.kind != InodeKind::Dir {
            return Err(FsError::NotDir);
        }
        Ok((cur, leaf))
    }

    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Whether `path` exists.
    pub fn exists(&mut self, path: &str) -> bool {
        self.resolve(path).is_ok()
    }

    /// Creates a file and opens it writable, returning its descriptor.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] if the path exists, plus path/storage errors.
    pub fn create(&mut self, path: &str) -> Result<u64> {
        let (dir, name) = self.resolve_parent(path)?;
        let dir_size = self.read_inode(dir)?.size;
        if self.dir_lookup(dir, dir_size, name)?.is_some() {
            return Err(FsError::Exists);
        }
        let ino = self.alloc_ino()?;
        let inode = Inode::new(InodeKind::File, self.now_ns());
        self.write_inode(ino, &inode)?;
        self.dir_add(
            dir,
            &DirEntry {
                ino,
                name: name.to_owned(),
            },
        )?;
        self.metrics.creates += 1;
        Ok(self.alloc_fd(ino, OpenMode::Write))
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] if the path exists, plus path/storage errors.
    pub fn mkdir(&mut self, path: &str) -> Result<()> {
        let (dir, name) = self.resolve_parent(path)?;
        let dir_size = self.read_inode(dir)?.size;
        if self.dir_lookup(dir, dir_size, name)?.is_some() {
            return Err(FsError::Exists);
        }
        let ino = self.alloc_ino()?;
        let inode = Inode::new(InodeKind::Dir, self.now_ns());
        self.write_inode(ino, &inode)?;
        self.dir_add(
            dir,
            &DirEntry {
                ino,
                name: name.to_owned(),
            },
        )?;
        self.metrics.creates += 1;
        Ok(())
    }

    /// Opens an existing file.
    ///
    /// Under [`WritePolicy::CopyOnOpen`], opening writable copies the whole
    /// file into DRAM immediately; under copy-on-write, nothing is copied
    /// until pages are written.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::IsDir`], plus storage errors.
    pub fn open(&mut self, path: &str, mode: OpenMode) -> Result<u64> {
        let start = self.sm.now();
        let ino = self.resolve(path)?;
        let inode = self.read_inode(ino)?;
        if inode.kind == InodeKind::Dir {
            return Err(FsError::IsDir);
        }
        let mut copied = 0u64;
        if mode == OpenMode::Write && self.policy == WritePolicy::CopyOnOpen {
            let ps = self.page_size();
            let pages = inode.size.div_ceil(ps);
            for i in 0..pages {
                let page = file_page(ino, i);
                let buf = self.read_page_buf(page)?;
                self.sm.write_page(page, &buf)?;
                self.put_buf(buf);
                self.metrics.copy_on_open_bytes += ps;
                copied += 1;
            }
        }
        self.recorder.emit(|| Span {
            kind: EventKind::FsOpen,
            start,
            end: self.sm.now(),
            energy: Energy::ZERO,
            pages: copied,
            bytes: copied * self.page_size(),
        });
        Ok(self.alloc_fd(ino, mode))
    }

    /// Issues the next descriptor and records it in the dense fd table.
    fn alloc_fd(&mut self, ino: Ino, mode: OpenMode) -> u64 {
        let fd = self.next_fd;
        self.next_fd += 1;
        if self.fds.len() <= fd as usize {
            self.fds.resize(fd as usize + 1, None);
        }
        self.fds[fd as usize] = Some((ino, mode));
        if self.ino_fds.len() <= ino as usize {
            self.ino_fds.resize_with(ino as usize + 1, Vec::new);
        }
        self.ino_fds[ino as usize].push(fd);
        fd
    }

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// [`FsError::BadFd`] if the descriptor is unknown.
    pub fn close(&mut self, fd: u64) -> Result<()> {
        match self.fds.get_mut(fd as usize) {
            Some(slot @ Some(_)) => {
                let (ino, _) = slot.take().expect("matched Some");
                if let Some(open) = self.ino_fds.get_mut(ino as usize) {
                    if let Some(pos) = open.iter().position(|&f| f == fd) {
                        open.swap_remove(pos);
                    }
                }
                Ok(())
            }
            _ => Err(FsError::BadFd),
        }
    }

    fn fd_ino(&self, fd: u64, need_write: bool) -> Result<Ino> {
        let (ino, mode) = self
            .fds
            .get(fd as usize)
            .copied()
            .flatten()
            .ok_or(FsError::BadFd)?;
        if need_write && mode != OpenMode::Write {
            return Err(FsError::ReadOnly);
        }
        Ok(ino)
    }

    /// Writes `data` at byte `offset` of the open file, extending it as
    /// needed. Only touched pages are copied to DRAM (copy-on-write).
    ///
    /// # Errors
    ///
    /// Descriptor and storage errors; short writes do not occur.
    // lint: hot-path
    pub fn write(&mut self, fd: u64, offset: u64, data: &[u8]) -> Result<()> {
        let start = self.sm.now();
        let ino = self.fd_ino(fd, true)?;
        self.write_ino(ino, offset, data)?;
        self.recorder.emit(|| Span {
            kind: EventKind::FsWrite,
            start,
            end: self.sm.now(),
            energy: Energy::ZERO,
            pages: (data.len() as u64).div_ceil(self.page_size().max(1)),
            bytes: data.len() as u64,
        });
        Ok(())
    }

    // lint: hot-path
    fn write_ino(&mut self, ino: Ino, offset: u64, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let ps = self.page_size();
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let page_idx = abs / ps;
            let within = (abs % ps) as usize;
            let chunk = ((ps as usize) - within).min(data.len() - pos);
            let page = file_page(ino, page_idx);
            if within == 0 && chunk == ps as usize {
                self.sm.write_page(page, &data[pos..pos + chunk])?;
            } else {
                self.rmw(page, within, &data[pos..pos + chunk])?;
            }
            pos += chunk;
        }
        let mut inode = self.read_inode(ino)?;
        inode.size = inode.size.max(offset + data.len() as u64);
        inode.mtime_ns = self.now_ns();
        self.write_inode(ino, &inode)?;
        self.metrics.writes += 1;
        self.metrics.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Reads up to `buf.len()` bytes at `offset`; returns the bytes read
    /// (short at end of file).
    ///
    /// # Errors
    ///
    /// Descriptor and storage errors.
    // lint: hot-path
    pub fn read(&mut self, fd: u64, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let start = self.sm.now();
        let ino = self.fd_ino(fd, false)?;
        let inode = self.read_inode(ino)?;
        if offset >= inode.size {
            return Ok(0);
        }
        let ps = self.page_size();
        let want = (buf.len() as u64).min(inode.size - offset) as usize;
        let mut pos = 0usize;
        while pos < want {
            let abs = offset + pos as u64;
            let page_idx = abs / ps;
            let within = (abs % ps) as usize;
            let chunk = ((ps as usize) - within).min(want - pos);
            if within == 0 && chunk == ps as usize {
                // Whole-page chunk: land it straight in the caller's
                // buffer — same storage read, no staging copy.
                self.sm
                    .read_page(file_page(ino, page_idx), &mut buf[pos..pos + chunk])?;
            } else {
                match self.sm.read_page_ref(file_page(ino, page_idx))? {
                    Some(page_buf) => {
                        buf[pos..pos + chunk].copy_from_slice(&page_buf[within..within + chunk]);
                    }
                    None => buf[pos..pos + chunk].fill(0),
                }
            }
            pos += chunk;
        }
        self.metrics.reads += 1;
        self.metrics.bytes_read += want as u64;
        self.recorder.emit(|| Span {
            kind: EventKind::FsRead,
            start,
            end: self.sm.now(),
            energy: Energy::ZERO,
            pages: (want as u64).div_ceil(self.page_size().max(1)),
            bytes: want as u64,
        });
        Ok(want)
    }

    /// Reads up to `len` bytes at `offset` without delivering them:
    /// charges exactly what [`Self::read`] into a `len`-byte buffer
    /// charges — same page reads, counters, and span — but never copies a
    /// byte. Trace replay drives reads whose contents nobody inspects;
    /// this is that path, minus the wasted memcpy per page.
    ///
    /// # Errors
    ///
    /// Descriptor and storage errors.
    // lint: hot-path
    pub fn read_discard(&mut self, fd: u64, offset: u64, len: u64) -> Result<usize> {
        let start = self.sm.now();
        let ino = self.fd_ino(fd, false)?;
        let inode = self.read_inode(ino)?;
        if offset >= inode.size {
            return Ok(0);
        }
        let ps = self.page_size();
        let want = len.min(inode.size - offset) as usize;
        if want > 0 {
            // Both the whole-page and sub-page chunks of `read` charge one
            // full-page storage read; the batched storage entry point
            // charges the same page sequence with one call.
            let first_idx = offset / ps;
            let last_idx = (offset + want as u64 - 1) / ps;
            self.sm
                .read_pages_discard(file_page(ino, first_idx), last_idx - first_idx + 1)?;
        }
        self.metrics.reads += 1;
        self.metrics.bytes_read += want as u64;
        self.recorder.emit(|| Span {
            kind: EventKind::FsRead,
            start,
            end: self.sm.now(),
            energy: Energy::ZERO,
            pages: (want as u64).div_ceil(self.page_size().max(1)),
            bytes: want as u64,
        });
        Ok(want)
    }

    /// Appends `data` at the end of the open file, returning the offset
    /// it was written at.
    ///
    /// # Errors
    ///
    /// Descriptor and storage errors.
    pub fn append(&mut self, fd: u64, data: &[u8]) -> Result<u64> {
        let ino = self.fd_ino(fd, true)?;
        let offset = self.read_inode(ino)?.size;
        self.write_ino(ino, offset, data)?;
        Ok(offset)
    }

    /// Reads the open file's entire contents.
    ///
    /// # Errors
    ///
    /// Descriptor and storage errors.
    pub fn read_to_vec(&mut self, fd: u64) -> Result<Vec<u8>> {
        let ino = self.fd_ino(fd, false)?;
        let size = self.read_inode(ino)?.size as usize;
        let mut buf = vec![0u8; size];
        let n = self.read(fd, 0, &mut buf)?;
        buf.truncate(n);
        Ok(buf)
    }

    /// Truncates the open file to `len` bytes, freeing whole pages beyond
    /// the new end.
    ///
    /// # Errors
    ///
    /// Descriptor and storage errors.
    pub fn ftruncate(&mut self, fd: u64, len: u64) -> Result<()> {
        let ino = self.fd_ino(fd, true)?;
        let mut inode = self.read_inode(ino)?;
        if len < inode.size {
            let ps = self.page_size();
            let first_dead = len.div_ceil(ps);
            let last = inode.size.div_ceil(ps);
            for i in first_dead..last {
                self.sm.free_page(file_page(ino, i))?;
            }
            // Zero the tail of the boundary page so a later extension
            // reads zeros past the truncation point, not stale bytes.
            let within = (len % ps) as usize;
            if within != 0 {
                let page = file_page(ino, len / ps);
                let zeros = vec![0u8; ps as usize - within];
                self.rmw(page, within, &zeros)?;
            }
        }
        inode.size = len;
        inode.mtime_ns = self.now_ns();
        self.write_inode(ino, &inode)
    }

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// [`FsError::IsDir`] for directories, plus path/storage errors.
    pub fn unlink(&mut self, path: &str) -> Result<()> {
        let (dir, name) = self.resolve_parent(path)?;
        let dir_size = self.read_inode(dir)?.size;
        let Some((slot, ino)) = self.dir_lookup(dir, dir_size, name)? else {
            return Err(FsError::NotFound);
        };
        let mut inode = self.read_inode(ino)?;
        if inode.kind == InodeKind::Dir {
            return Err(FsError::IsDir);
        }
        if inode.nlink > 1 {
            // Other names still reference the data.
            inode.nlink -= 1;
            self.write_inode(ino, &inode)?;
        } else {
            self.remove_inode(ino, inode.size)?;
        }
        self.dir_remove_slot(dir, slot, name)?;
        self.metrics.deletes += 1;
        Ok(())
    }

    /// Creates a hard link: `new` becomes another name for the file at
    /// `existing`. Directories cannot be linked.
    ///
    /// # Errors
    ///
    /// [`FsError::IsDir`] for directories, [`FsError::Exists`] if `new`
    /// exists, plus path/storage errors.
    pub fn link(&mut self, existing: &str, new: &str) -> Result<()> {
        let ino = self.resolve(existing)?;
        let mut inode = self.read_inode(ino)?;
        if inode.kind == InodeKind::Dir {
            return Err(FsError::IsDir);
        }
        let (dir, name) = self.resolve_parent(new)?;
        let dir_size = self.read_inode(dir)?.size;
        if self.dir_lookup(dir, dir_size, name)?.is_some() {
            return Err(FsError::Exists);
        }
        inode.nlink += 1;
        self.write_inode(ino, &inode)?;
        self.dir_add(
            dir,
            &DirEntry {
                ino,
                name: name.to_owned(),
            },
        )?;
        Ok(())
    }

    fn remove_inode(&mut self, ino: Ino, size: u64) -> Result<()> {
        let ps = self.page_size();
        for i in 0..size.div_ceil(ps) {
            self.sm.free_page(file_page(ino, i))?;
        }
        self.write_inode(ino, &Inode::decode(&[0u8; INODE_BYTES]))?;
        self.free_inos.push(ino);
        // Any descriptor pointing at the dead inode becomes invalid. The
        // per-ino list makes this O(open descriptors of this inode); the
        // drained vector keeps its capacity for the ino's next tenant.
        if let Some(open) = self.ino_fds.get_mut(ino as usize) {
            for fd in open.drain(..) {
                if let Some(slot) = self.fds.get_mut(fd as usize) {
                    *slot = None;
                }
            }
        }
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::DirNotEmpty`] when entries remain, plus path/storage
    /// errors.
    pub fn rmdir(&mut self, path: &str) -> Result<()> {
        let (dir, name) = self.resolve_parent(path)?;
        let dir_size = self.read_inode(dir)?.size;
        let Some((slot, ino)) = self.dir_lookup(dir, dir_size, name)? else {
            return Err(FsError::NotFound);
        };
        let inode = self.read_inode(ino)?;
        if inode.kind != InodeKind::Dir {
            return Err(FsError::NotDir);
        }
        if !self.dir_entries(ino, inode.size)?.is_empty() {
            return Err(FsError::DirNotEmpty);
        }
        self.remove_inode(ino, inode.size)?;
        self.dir_remove_slot(dir, slot, name)?;
        self.metrics.deletes += 1;
        Ok(())
    }

    /// Renames `old` to `new` (both absolute paths). Overwrites nothing.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] if the destination exists, plus path/storage
    /// errors.
    pub fn rename(&mut self, old: &str, new: &str) -> Result<()> {
        let (old_dir, old_name) = self.resolve_parent(old)?;
        let old_size = self.read_inode(old_dir)?.size;
        let Some((old_slot, ino)) = self.dir_lookup(old_dir, old_size, old_name)? else {
            return Err(FsError::NotFound);
        };
        let (new_dir, new_name) = self.resolve_parent(new)?;
        let new_size = self.read_inode(new_dir)?.size;
        if self.dir_lookup(new_dir, new_size, new_name)?.is_some() {
            return Err(FsError::Exists);
        }
        self.dir_add(
            new_dir,
            &DirEntry {
                ino,
                name: new_name.to_owned(),
            },
        )?;
        self.dir_remove_slot(old_dir, old_slot, old_name)?;
        Ok(())
    }

    /// Returns a path's metadata.
    ///
    /// # Errors
    ///
    /// Path and storage errors.
    pub fn stat(&mut self, path: &str) -> Result<Stat> {
        let ino = self.resolve(path)?;
        let inode = self.read_inode(ino)?;
        Ok(Stat {
            kind: inode.kind,
            size: inode.size,
            mtime_ns: inode.mtime_ns,
        })
    }

    /// Lists a directory's entries.
    ///
    /// # Errors
    ///
    /// [`FsError::NotDir`] for files, plus path/storage errors.
    pub fn list_dir(&mut self, path: &str) -> Result<Vec<DirEntry>> {
        let ino = self.resolve(path)?;
        let inode = self.read_inode(ino)?;
        if inode.kind != InodeKind::Dir {
            return Err(FsError::NotDir);
        }
        Ok(self
            .dir_entries(ino, inode.size)?
            .into_iter()
            .map(|(_, e)| e)
            .collect())
    }

    /// Maps a file for direct access (the VM layer's entry point for
    /// memory-mapped files and execute-in-place).
    ///
    /// # Errors
    ///
    /// Path and storage errors.
    pub fn map_file(&mut self, path: &str) -> Result<FileMap> {
        let ino = self.resolve(path)?;
        let inode = self.read_inode(ino)?;
        if inode.kind == InodeKind::Dir {
            return Err(FsError::IsDir);
        }
        let ps = self.page_size();
        let pages = (0..inode.size.div_ceil(ps))
            .map(|i| file_page(ino, i))
            .collect();
        Ok(FileMap {
            ino,
            size: inode.size,
            pages,
        })
    }

    /// Forces all dirty data and metadata to flash.
    ///
    /// # Errors
    ///
    /// Storage errors.
    pub fn sync(&mut self) -> Result<()> {
        self.sm.sync()?;
        Ok(())
    }

    /// Periodic maintenance passthrough.
    ///
    /// # Errors
    ///
    /// Storage errors.
    pub fn tick(&mut self) -> Result<()> {
        self.sm.tick()?;
        Ok(())
    }

    /// Simulates battery death.
    pub fn crash(&mut self) {
        self.fds.clear();
        self.ino_fds.clear();
        self.dirs.clear();
        self.sm.crash();
    }

    /// Recovers from battery death: storage-level recovery followed by a
    /// consistency pass (fsck) that repairs the namespace.
    ///
    /// # Errors
    ///
    /// Storage errors during recovery.
    pub fn recover(&mut self) -> Result<(RecoveryReport, FsckReport)> {
        let storage_report = self.sm.recover()?;
        let fsck = self.fsck()?;
        Ok((storage_report, fsck))
    }

    /// Post-recovery consistency pass. Public so tests and experiments can
    /// run it on demand.
    ///
    /// # Errors
    ///
    /// Storage errors.
    pub fn fsck(&mut self) -> Result<FsckReport> {
        let mut report = FsckReport::default();

        // Recover the allocation watermark: the superblock may have
        // reverted, but inode-table pages that exist bound the range.
        let per = self.inodes_per_page();
        let mut max_page = 0u64;
        while self.sm.contains(window(0) + 1 + max_page) {
            max_page += 1;
        }
        let scan_limit = (max_page * per).min(Ino::MAX as u64) as Ino;
        let sb_next = match self.read_superblock()? {
            Some(sb) => sb.next_ino,
            None => ROOT_INO + 1,
        };
        self.next_ino = sb_next.max(scan_limit.max(ROOT_INO + 1));

        // Root must exist.
        if self.read_inode(ROOT_INO)?.kind != InodeKind::Dir {
            let root = Inode::new(InodeKind::Dir, self.now_ns());
            self.write_inode(ROOT_INO, &root)?;
            report.root_rebuilt = true;
        }

        // Walk the namespace from the root, dropping dangling entries and
        // counting surviving references per file (hard links).
        // lint: allow(D2): membership test only; the repair loop below
        // iterates inode numbers in ascending order, not this set.
        let mut reachable: HashSet<Ino> = HashSet::new();
        // lint: allow(D2): keyed count lookup only; consumed via
        // `get(&ino)` inside the ascending inode scan.
        let mut file_refs: HashMap<Ino, u16> = HashMap::new();
        reachable.insert(ROOT_INO);
        let mut queue: VecDeque<Ino> = VecDeque::new();
        queue.push_back(ROOT_INO);
        while let Some(dir) = queue.pop_front() {
            let size = self.read_inode(dir)?.size;
            for (slot, entry) in self.dir_entries(dir, size)? {
                let target = if entry.ino >= self.next_ino {
                    InodeKind::Free
                } else {
                    self.read_inode(entry.ino)?.kind
                };
                match target {
                    InodeKind::Free => {
                        self.dir_remove_slot(dir, slot, &entry.name)?;
                        report.dangling_entries += 1;
                    }
                    InodeKind::Dir => {
                        if reachable.insert(entry.ino) {
                            queue.push_back(entry.ino);
                        } else {
                            // Second link to a directory: drop it.
                            self.dir_remove_slot(dir, slot, &entry.name)?;
                            report.dangling_entries += 1;
                        }
                    }
                    InodeKind::File => {
                        reachable.insert(entry.ino);
                        *file_refs.entry(entry.ino).or_insert(0) += 1;
                    }
                }
            }
        }

        // Free unreachable inodes, repair link counts, and rebuild the
        // free list.
        self.free_inos.clear();
        for ino in (ROOT_INO + 1)..self.next_ino {
            let mut inode = self.read_inode(ino)?;
            if inode.kind == InodeKind::Free {
                self.free_inos.push(ino);
            } else if !reachable.contains(&ino) {
                self.remove_inode(ino, inode.size)?;
                report.orphans_freed += 1;
            } else if inode.kind == InodeKind::File {
                let refs = file_refs.get(&ino).copied().unwrap_or(1).max(1);
                if inode.nlink != refs {
                    inode.nlink = refs;
                    self.write_inode(ino, &inode)?;
                    report.nlinks_repaired += 1;
                }
            }
        }
        self.write_superblock()?;
        self.rebuild_dindex()?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmc_device::FlashSpec;
    use ssmc_sim::{Clock, SimDuration};
    use ssmc_storage::StorageConfig;

    fn fs_with(policy: WritePolicy) -> MemFs {
        let clock = Clock::shared();
        let cfg = StorageConfig {
            page_size: 512,
            dram_buffer_bytes: 64 * 512,
            flash: FlashSpec {
                banks: 2,
                blocks_per_bank: 24,
                block_bytes: 4096,
                write_unit: 512,
                ..FlashSpec::default()
            },
            ..StorageConfig::default()
        };
        let sm = StorageManager::new(cfg, clock);
        MemFs::new(sm, policy).expect("mount")
    }

    fn fs() -> MemFs {
        fs_with(WritePolicy::CopyOnWrite)
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut f = fs();
        let fd = f.create("/hello.txt").expect("create");
        f.write(fd, 0, b"hello, flash world").expect("write");
        let mut buf = [0u8; 64];
        let n = f.read(fd, 0, &mut buf).expect("read");
        assert_eq!(&buf[..n], b"hello, flash world");
        let st = f.stat("/hello.txt").expect("stat");
        assert_eq!(st.size, 18);
        assert_eq!(st.kind, InodeKind::File);
    }

    #[test]
    fn offsets_and_partial_pages() {
        let mut f = fs();
        let fd = f.create("/f").expect("create");
        // Write across a page boundary at an odd offset.
        let data: Vec<u8> = (0..1500u32).map(|i| (i % 251) as u8).collect();
        f.write(fd, 300, &data).expect("write");
        let mut buf = vec![0u8; 1500];
        let n = f.read(fd, 300, &mut buf).expect("read");
        assert_eq!(n, 1500);
        assert_eq!(buf, data);
        // The hole before offset 300 reads as zeros.
        let mut head = vec![9u8; 300];
        f.read(fd, 0, &mut head).expect("read head");
        assert!(head.iter().all(|&b| b == 0));
        assert_eq!(f.stat("/f").expect("stat").size, 1800);
    }

    #[test]
    fn directories_nest_and_list() {
        let mut f = fs();
        f.mkdir("/docs").expect("mkdir");
        f.mkdir("/docs/work").expect("mkdir nested");
        let fd = f.create("/docs/work/todo.txt").expect("create");
        f.write(fd, 0, b"ship it").expect("write");
        let entries = f.list_dir("/docs").expect("list");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "work");
        let entries = f.list_dir("/docs/work").expect("list");
        assert_eq!(entries[0].name, "todo.txt");
        assert!(f.exists("/docs/work/todo.txt"));
        assert!(!f.exists("/docs/play"));
    }

    #[test]
    fn create_errors() {
        let mut f = fs();
        f.create("/a").expect("create");
        assert_eq!(f.create("/a"), Err(FsError::Exists));
        assert_eq!(f.create("/no/dir/file"), Err(FsError::NotFound));
        assert_eq!(f.create("relative"), Err(FsError::BadPath));
        assert_eq!(f.open("/missing", OpenMode::Read), Err(FsError::NotFound));
        // A file used as a directory component.
        assert_eq!(f.create("/a/b"), Err(FsError::NotDir));
    }

    #[test]
    fn unlink_frees_space_and_name() {
        let mut f = fs();
        let fd = f.create("/big").expect("create");
        f.write(fd, 0, &vec![7u8; 8192]).expect("write");
        let live_before = f.storage().pages_live();
        f.unlink("/big").expect("unlink");
        assert!(f.storage().pages_live() < live_before);
        assert!(!f.exists("/big"));
        // Descriptor died with the file.
        assert_eq!(f.write(fd, 0, b"x"), Err(FsError::BadFd));
        // Name is reusable.
        f.create("/big").expect("recreate");
    }

    #[test]
    fn freed_dirent_slots_are_reused_lifo() {
        // The free-slot list is load-bearing for the on-flash layout:
        // recreates must fill the most recently freed slot first, so the
        // listing (which scans slots in order) — and therefore `results/`
        // — is pinned by this exact order.
        let mut f = fs();
        for name in ["/a", "/b", "/c", "/d"] {
            f.create(name).expect("create");
        }
        f.unlink("/b").expect("unlink slot 1");
        f.unlink("/c").expect("unlink slot 2");
        // LIFO: /e takes slot 2 (freed last), /f takes slot 1, /g appends.
        for name in ["/e", "/f", "/g"] {
            f.create(name).expect("recreate");
        }
        let order: Vec<String> = f
            .list_dir("/")
            .expect("list")
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(order, ["a", "f", "e", "d", "g"], "slot layout changed");
    }

    #[test]
    fn zeroing_a_slot_drops_every_aliased_index_entry() {
        // A stale index entry can alias a reused slot (historically: an
        // error path handed a live slot back to `free_slots`). The
        // pre-B-tree HashMap removed entries by slot (`retain`), so
        // zeroing the slot healed every claimant at once — and long
        // replays pin that behaviour. Reproduce the alias directly and
        // check the B-tree path heals the same way.
        let mut f = fs();
        f.create("/a").expect("create"); // slot 0
        f.create("/b").expect("create"); // slot 1
        // Simulate the historical double-free: slot 0 is live but listed
        // as free.
        f.dirs[ROOT_INO as usize]
            .as_mut()
            .expect("root index")
            .free_slots
            .push(0);
        // /c reuses slot 0, overwriting /a's dirent; the index now holds
        // two claimants for slot 0.
        f.create("/c").expect("create");
        assert!(f.stat("/a").is_ok(), "stale alias still resolves");
        // Zeroing the slot must drop BOTH entries, as retain-by-slot did.
        f.unlink("/c").expect("unlink");
        assert_eq!(f.stat("/a").unwrap_err(), FsError::NotFound);
        assert_eq!(f.stat("/c").unwrap_err(), FsError::NotFound);
        assert!(f.stat("/b").is_ok(), "unrelated entry survives");
    }

    #[test]
    fn dindex_depth_grows_logarithmically_and_publishes() {
        let mut f = fs();
        for i in 0..120 {
            f.create(&format!("/f{i:03}")).expect("create");
        }
        let (depth, splits) = f.dindex_stats();
        assert!(depth >= 2, "120 entries must split the root");
        assert!(splits > 0);
        let mut reg = MetricsRegistry::new();
        f.publish_metrics(&mut reg);
        assert_eq!(reg.counter_value("fs.dindex_splits"), Some(splits));
        assert_eq!(reg.gauge_value("fs.dindex_depth"), Some(f64::from(depth)));
    }

    #[test]
    fn rmdir_requires_empty() {
        let mut f = fs();
        f.mkdir("/d").expect("mkdir");
        f.create("/d/f").expect("create");
        assert_eq!(f.rmdir("/d"), Err(FsError::DirNotEmpty));
        f.unlink("/d/f").expect("unlink");
        f.rmdir("/d").expect("rmdir");
        assert!(!f.exists("/d"));
        assert_eq!(f.rmdir("/d"), Err(FsError::NotFound));
    }

    #[test]
    fn rename_moves_between_directories() {
        let mut f = fs();
        f.mkdir("/a").expect("mkdir");
        f.mkdir("/b").expect("mkdir");
        let fd = f.create("/a/file").expect("create");
        f.write(fd, 0, b"payload").expect("write");
        f.rename("/a/file", "/b/moved").expect("rename");
        assert!(!f.exists("/a/file"));
        let fd2 = f.open("/b/moved", OpenMode::Read).expect("open");
        let mut buf = [0u8; 7];
        f.read(fd2, 0, &mut buf).expect("read");
        assert_eq!(&buf, b"payload");
        // Destination collision is refused.
        f.create("/b/taken").expect("create");
        assert_eq!(f.rename("/b/moved", "/b/taken"), Err(FsError::Exists));
    }

    #[test]
    fn truncate_frees_tail_pages() {
        let mut f = fs();
        let fd = f.create("/t").expect("create");
        f.write(fd, 0, &vec![1u8; 4096]).expect("write");
        let live_before = f.storage().pages_live();
        f.ftruncate(fd, 512).expect("truncate");
        assert!(f.storage().pages_live() < live_before);
        assert_eq!(f.stat("/t").expect("stat").size, 512);
        // Extending again reads zeros in the reopened range.
        let mut buf = vec![9u8; 1024];
        let n = f.read(fd, 0, &mut buf).expect("read");
        assert_eq!(n, 512);
    }

    #[test]
    fn read_only_descriptor_rejects_writes() {
        let mut f = fs();
        let fd = f.create("/r").expect("create");
        f.write(fd, 0, b"x").expect("write");
        f.close(fd).expect("close");
        let ro = f.open("/r", OpenMode::Read).expect("open ro");
        assert_eq!(f.write(ro, 0, b"y"), Err(FsError::ReadOnly));
        assert_eq!(f.close(99), Err(FsError::BadFd));
    }

    #[test]
    fn map_file_exposes_page_run() {
        let mut f = fs();
        let fd = f.create("/m").expect("create");
        f.write(fd, 0, &vec![3u8; 1500]).expect("write");
        let map = f.map_file("/m").expect("map");
        assert_eq!(map.size, 1500);
        assert_eq!(map.pages.len(), 3);
        // Pages are consecutive in the ino window: the "no indirect
        // blocks" property.
        assert_eq!(map.pages[1], map.pages[0] + 1);
        assert_eq!(map.pages[2], map.pages[0] + 2);
    }

    #[test]
    fn data_survives_sync_crash_recover() {
        let mut f = fs();
        let fd = f.create("/durable").expect("create");
        f.write(fd, 0, b"must survive").expect("write");
        f.sync().expect("sync");
        f.crash();
        let (storage_report, fsck) = f.recover().expect("recover");
        assert_eq!(storage_report.lost_pages, 0);
        assert_eq!(fsck.dangling_entries, 0);
        let fd = f.open("/durable", OpenMode::Read).expect("open");
        let mut buf = [0u8; 12];
        f.read(fd, 0, &mut buf).expect("read");
        assert_eq!(&buf, b"must survive");
    }

    #[test]
    fn unsynced_create_is_cleaned_by_fsck() {
        let mut f = fs();
        // Make the namespace durable first.
        let fd = f.create("/old").expect("create");
        f.write(fd, 0, b"old data").expect("write");
        f.sync().expect("sync");
        // New file exists only in DRAM.
        let fd2 = f.create("/fresh").expect("create");
        f.write(fd2, 0, &vec![5u8; 2048]).expect("write");
        f.crash();
        let (_, fsck) = f.recover().expect("recover");
        // Either the dirent or the inode (or both) died; fsck must leave a
        // consistent namespace with /old intact.
        assert!(f.exists("/old"), "durable file survived");
        let _ = fsck;
        let names: Vec<String> = f
            .list_dir("/")
            .expect("list")
            .into_iter()
            .map(|e| e.name)
            .collect();
        // No phantom entries pointing at dead inodes.
        for name in names {
            assert!(f.stat(&format!("/{name}")).is_ok());
        }
    }

    #[test]
    fn copy_on_open_copies_copy_on_write_does_not() {
        for (policy, expect_copy) in [
            (WritePolicy::CopyOnOpen, true),
            (WritePolicy::CopyOnWrite, false),
        ] {
            let mut f = fs_with(policy);
            let fd = f.create("/doc").expect("create");
            f.write(fd, 0, &vec![1u8; 8 * 512]).expect("write");
            f.close(fd).expect("close");
            f.sync().expect("sync");
            let before = f.storage().metrics().pages_written;
            let fd = f.open("/doc", OpenMode::Write).expect("open rw");
            let copied = f.storage().metrics().pages_written - before;
            if expect_copy {
                assert_eq!(copied, 8, "copy-on-open copies every page");
                assert_eq!(f.metrics().copy_on_open_bytes, 8 * 512);
            } else {
                assert_eq!(copied, 0, "copy-on-write copies nothing at open");
            }
            // One small write: COW dirties exactly one page (plus inode).
            let before = f.storage().metrics().pages_written;
            f.write(fd, 0, b"tweak").expect("write");
            let dirtied = f.storage().metrics().pages_written - before;
            assert!(dirtied <= 2, "small write touched {dirtied} pages");
        }
    }

    #[test]
    fn metadata_updates_are_absorbed_by_the_buffer() {
        let mut f = fs();
        let fd = f.create("/hot").expect("create");
        for i in 0..50u64 {
            f.write(fd, i * 8, &[i as u8; 8]).expect("write");
        }
        // 50 writes to the same data page + 50 inode updates: nearly all
        // absorbed in DRAM, not flash.
        let m = f.storage().metrics();
        assert!(
            m.overwrites_absorbed > 80,
            "absorbed {} of {}",
            m.overwrites_absorbed,
            m.pages_written
        );
    }

    #[test]
    fn large_file_spans_many_pages() {
        let mut f = fs();
        let fd = f.create("/large").expect("create");
        let data: Vec<u8> = (0..30_000u32).map(|i| (i * 7 % 256) as u8).collect();
        f.write(fd, 0, &data).expect("write");
        f.sync().expect("sync");
        let mut buf = vec![0u8; 30_000];
        let n = f.read(fd, 0, &mut buf).expect("read");
        assert_eq!(n, 30_000);
        assert_eq!(buf, data);
    }

    #[test]
    fn mtime_advances_with_simulated_time() {
        let clock = Clock::shared();
        let cfg = StorageConfig {
            flash: FlashSpec {
                banks: 1,
                blocks_per_bank: 32,
                block_bytes: 4096,
                write_unit: 512,
                ..FlashSpec::default()
            },
            ..StorageConfig::default()
        };
        let sm = StorageManager::new(cfg, clock.clone());
        let mut f = MemFs::new(sm, WritePolicy::CopyOnWrite).expect("mount");
        let fd = f.create("/clock").expect("create");
        f.write(fd, 0, b"a").expect("write");
        let t1 = f.stat("/clock").expect("stat").mtime_ns;
        clock.advance(SimDuration::from_secs(5));
        f.write(fd, 0, b"b").expect("write");
        let t2 = f.stat("/clock").expect("stat").mtime_ns;
        assert!(t2 >= t1 + 5_000_000_000);
    }
}

#[cfg(test)]
mod link_tests {
    use super::*;
    use ssmc_device::FlashSpec;
    use ssmc_sim::Clock;
    use ssmc_storage::StorageConfig;

    fn fs() -> MemFs {
        let clock = Clock::shared();
        let cfg = StorageConfig {
            page_size: 512,
            dram_buffer_bytes: 64 * 512,
            flash: FlashSpec {
                banks: 2,
                blocks_per_bank: 24,
                block_bytes: 4096,
                write_unit: 512,
                ..FlashSpec::default()
            },
            ..StorageConfig::default()
        };
        MemFs::new(StorageManager::new(cfg, clock), WritePolicy::CopyOnWrite).expect("mount")
    }

    #[test]
    fn hard_link_shares_data_until_last_name_dies() {
        let mut f = fs();
        let fd = f.create("/original").expect("create");
        f.write(fd, 0, b"shared bytes").expect("write");
        f.link("/original", "/alias").expect("link");
        // Both names see the same data; writes through one are visible
        // through the other.
        let a = f.open("/alias", OpenMode::Write).expect("open alias");
        f.write(a, 0, b"SHARED").expect("write via alias");
        let mut buf = [0u8; 12];
        let o = f.open("/original", OpenMode::Read).expect("open original");
        f.read(o, 0, &mut buf).expect("read");
        assert_eq!(&buf, b"SHARED bytes");
        // Unlinking one name keeps the data alive.
        let live_before = f.storage().pages_live();
        f.unlink("/original").expect("unlink original");
        assert_eq!(f.storage().pages_live(), live_before, "no pages freed yet");
        let mut buf2 = [0u8; 6];
        let a2 = f.open("/alias", OpenMode::Read).expect("alias survives");
        f.read(a2, 0, &mut buf2).expect("read");
        assert_eq!(&buf2, b"SHARED");
        // Unlinking the last name frees the pages.
        f.unlink("/alias").expect("unlink alias");
        assert!(f.storage().pages_live() < live_before);
    }

    #[test]
    fn linking_directories_is_refused() {
        let mut f = fs();
        f.mkdir("/d").expect("mkdir");
        assert_eq!(f.link("/d", "/d2"), Err(FsError::IsDir));
    }

    #[test]
    fn link_to_existing_name_is_refused() {
        let mut f = fs();
        f.create("/a").expect("create");
        f.create("/b").expect("create");
        assert_eq!(f.link("/a", "/b"), Err(FsError::Exists));
        assert_eq!(f.link("/missing", "/c"), Err(FsError::NotFound));
    }

    #[test]
    fn fsck_repairs_link_counts_after_crash() {
        let mut f = fs();
        let fd = f.create("/file").expect("create");
        f.write(fd, 0, b"x").expect("write");
        f.link("/file", "/hard1").expect("link");
        f.link("/file", "/hard2").expect("link");
        f.sync().expect("sync");
        // One more link that never becomes durable.
        f.link("/file", "/ghost").expect("link");
        f.crash();
        let (_, fsck) = f.recover().expect("recover");
        // The ghost entry (or its nlink bump) may have died; fsck must
        // leave nlink equal to the surviving reference count.
        let survivors = ["/file", "/hard1", "/hard2", "/ghost"]
            .iter()
            .filter(|p| f.exists(p))
            .count() as u16;
        assert!(survivors >= 3);
        let _ = fsck;
        // Unlink all surviving names; data must be freed exactly at the
        // last one (no use-after-free, no leak).
        for p in ["/file", "/hard1", "/hard2", "/ghost"] {
            if f.exists(p) {
                f.unlink(p).expect("unlink survivor");
            }
        }
        // After removing every name, fsck finds no orphans.
        let report = f.fsck().expect("fsck");
        assert_eq!(report.orphans_freed, 0);
    }

    #[test]
    fn rename_preserves_links() {
        let mut f = fs();
        let fd = f.create("/a").expect("create");
        f.write(fd, 0, b"data").expect("write");
        f.link("/a", "/b").expect("link");
        f.rename("/a", "/c").expect("rename");
        assert_eq!(f.stat("/c").expect("stat").size, 4);
        assert_eq!(f.stat("/b").expect("stat").size, 4);
        f.unlink("/c").expect("unlink");
        assert!(f.exists("/b"));
    }
}

#[cfg(test)]
mod convenience_tests {
    use super::*;
    use ssmc_device::FlashSpec;
    use ssmc_sim::Clock;
    use ssmc_storage::StorageConfig;

    fn fs() -> MemFs {
        let clock = Clock::shared();
        let cfg = StorageConfig {
            flash: FlashSpec {
                banks: 1,
                blocks_per_bank: 32,
                block_bytes: 4096,
                write_unit: 512,
                ..FlashSpec::default()
            },
            ..StorageConfig::default()
        };
        MemFs::new(StorageManager::new(cfg, clock), WritePolicy::CopyOnWrite).expect("mount")
    }

    #[test]
    fn append_extends_and_returns_offsets() {
        let mut f = fs();
        let fd = f.create("/log").expect("create");
        assert_eq!(f.append(fd, b"first").expect("append"), 0);
        assert_eq!(f.append(fd, b" second").expect("append"), 5);
        assert_eq!(f.read_to_vec(fd).expect("read"), b"first second");
    }

    #[test]
    fn read_to_vec_of_empty_file_is_empty() {
        let mut f = fs();
        let fd = f.create("/empty").expect("create");
        assert!(f.read_to_vec(fd).expect("read").is_empty());
    }

    #[test]
    fn append_respects_read_only_descriptors() {
        let mut f = fs();
        let fd = f.create("/x").expect("create");
        f.close(fd).expect("close");
        let ro = f.open("/x", OpenMode::Read).expect("open");
        assert_eq!(f.append(ro, b"nope"), Err(FsError::ReadOnly));
    }
}
