//! On-flash layout: page-space geometry, inode and directory-entry
//! encodings, and the superblock.
//!
//! The 64-bit logical page space is carved arithmetically — no allocation
//! maps, no indirect blocks:
//!
//! ```text
//! page id = (ino as u64) << 32 | page_index
//!
//! ino 0 window (metadata):
//!   page 0            superblock
//!   page 1..          inode table, page_size/64 inodes per page
//! ino 1..             root directory and all files/directories
//! ```
//!
//! Encodings are explicit little-endian byte layouts (not serde): this is
//! the persistent format a real implementation would burn into flash, and
//! it must be stable under recovery.

/// Inode number.
pub type Ino = u32;

/// The root directory's inode.
pub const ROOT_INO: Ino = 1;

/// Bytes per encoded inode.
pub const INODE_BYTES: usize = 64;

/// Bytes per encoded directory entry.
pub const DIRENT_BYTES: usize = 32;

/// Maximum file-name length in bytes.
pub const NAME_MAX: usize = 26;

/// Superblock magic.
pub const MAGIC: u64 = 0x5353_4D43_4653_0001; // "SSMCFS01"

/// The logical page window of an inode: its pages start here.
pub fn window(ino: Ino) -> u64 {
    (ino as u64) << 32
}

/// Logical page id of byte-page `index` within file `ino`.
pub fn file_page(ino: Ino, index: u64) -> u64 {
    debug_assert!(index < 1 << 32, "file too large for its window");
    window(ino) | index
}

/// What an inode currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InodeKind {
    /// Unallocated.
    Free,
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

impl InodeKind {
    fn to_byte(self) -> u8 {
        match self {
            InodeKind::Free => 0,
            InodeKind::File => 1,
            InodeKind::Dir => 2,
        }
    }

    fn from_byte(b: u8) -> InodeKind {
        match b {
            1 => InodeKind::File,
            2 => InodeKind::Dir,
            _ => InodeKind::Free,
        }
    }
}

/// An inode: fixed 64-byte record in the inode table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inode {
    /// File, directory, or free.
    pub kind: InodeKind,
    /// Size in bytes.
    pub size: u64,
    /// Link count (1 for ordinary files; directories don't self-link in
    /// this design).
    pub nlink: u16,
    /// Last-modification instant, nanoseconds of simulated time.
    pub mtime_ns: u64,
    /// Creation instant, nanoseconds of simulated time.
    pub ctime_ns: u64,
}

impl Inode {
    /// A fresh inode of `kind` stamped at `now_ns`.
    pub fn new(kind: InodeKind, now_ns: u64) -> Self {
        Inode {
            kind,
            size: 0,
            nlink: 1,
            mtime_ns: now_ns,
            ctime_ns: now_ns,
        }
    }

    /// Encodes into exactly [`INODE_BYTES`] bytes.
    pub fn encode(&self) -> [u8; INODE_BYTES] {
        let mut out = [0u8; INODE_BYTES];
        out[0] = self.kind.to_byte();
        out[8..16].copy_from_slice(&self.size.to_le_bytes());
        out[16..18].copy_from_slice(&self.nlink.to_le_bytes());
        out[24..32].copy_from_slice(&self.mtime_ns.to_le_bytes());
        out[32..40].copy_from_slice(&self.ctime_ns.to_le_bytes());
        out
    }

    /// Decodes from a [`INODE_BYTES`]-byte record.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`INODE_BYTES`].
    pub fn decode(buf: &[u8]) -> Inode {
        Inode {
            kind: InodeKind::from_byte(buf[0]),
            size: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
            nlink: u16::from_le_bytes(buf[16..18].try_into().expect("2 bytes")),
            mtime_ns: u64::from_le_bytes(buf[24..32].try_into().expect("8 bytes")),
            ctime_ns: u64::from_le_bytes(buf[32..40].try_into().expect("8 bytes")),
        }
    }
}

/// A directory entry: fixed 32-byte slot (`ino == 0` means the slot is
/// empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Target inode.
    pub ino: Ino,
    /// Entry name (≤ [`NAME_MAX`] bytes).
    pub name: String,
}

impl DirEntry {
    /// Encodes into exactly [`DIRENT_BYTES`] bytes.
    ///
    /// # Panics
    ///
    /// Panics if the name exceeds [`NAME_MAX`] bytes (validated earlier by
    /// path handling).
    pub fn encode(&self) -> [u8; DIRENT_BYTES] {
        let name = self.name.as_bytes();
        assert!(name.len() <= NAME_MAX, "name too long for dirent");
        let mut out = [0u8; DIRENT_BYTES];
        out[0..4].copy_from_slice(&self.ino.to_le_bytes());
        out[4] = name.len() as u8;
        out[5..5 + name.len()].copy_from_slice(name);
        out
    }

    /// Decodes a slot; `None` if the slot is empty.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`DIRENT_BYTES`].
    pub fn decode(buf: &[u8]) -> Option<DirEntry> {
        let ino = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        if ino == 0 {
            return None;
        }
        let len = (buf[4] as usize).min(NAME_MAX);
        let name = String::from_utf8_lossy(&buf[5..5 + len]).into_owned();
        Some(DirEntry { ino, name })
    }
}

/// The superblock (page 0 of the metadata window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Must equal [`MAGIC`].
    pub magic: u64,
    /// Next never-used inode number (allocation watermark).
    pub next_ino: Ino,
}

impl Superblock {
    /// A fresh superblock for an empty file system.
    pub fn fresh() -> Self {
        Superblock {
            magic: MAGIC,
            next_ino: ROOT_INO + 1,
        }
    }

    /// Encodes into the front of a page buffer.
    pub fn encode_into(&self, page: &mut [u8]) {
        page[0..8].copy_from_slice(&self.magic.to_le_bytes());
        page[8..12].copy_from_slice(&self.next_ino.to_le_bytes());
    }

    /// Decodes from a page buffer; `None` if the magic is absent.
    pub fn decode(page: &[u8]) -> Option<Superblock> {
        let magic = u64::from_le_bytes(page[0..8].try_into().expect("8 bytes"));
        if magic != MAGIC {
            return None;
        }
        Some(Superblock {
            magic,
            next_ino: u32::from_le_bytes(page[8..12].try_into().expect("4 bytes")),
        })
    }
}

/// Validates one path component.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty() && name.len() <= NAME_MAX && !name.contains('/') && name != "." && name != ".."
}

/// Splits an absolute path into components.
///
/// Returns `None` for relative paths or paths with empty components
/// (`"//"`), over-long names, or `"."`/`".."`.
pub fn split_path(path: &str) -> Option<Vec<&str>> {
    let rest = path.strip_prefix('/')?;
    if rest.is_empty() {
        return Some(Vec::new());
    }
    let parts: Vec<&str> = rest.split('/').collect();
    if parts.iter().all(|p| valid_name(p)) {
        Some(parts)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_do_not_overlap() {
        assert_eq!(window(0), 0);
        assert_eq!(window(1), 1 << 32);
        assert!(file_page(1, u32::MAX as u64) < window(2));
    }

    #[test]
    fn inode_encode_decode_round_trip() {
        let i = Inode {
            kind: InodeKind::Dir,
            size: 123_456_789_012,
            nlink: 7,
            mtime_ns: 42,
            ctime_ns: 43,
        };
        assert_eq!(Inode::decode(&i.encode()), i);
    }

    #[test]
    fn zeroed_bytes_decode_as_free_inode() {
        let i = Inode::decode(&[0u8; INODE_BYTES]);
        assert_eq!(i.kind, InodeKind::Free);
        assert_eq!(i.size, 0);
    }

    #[test]
    fn dirent_round_trip_and_empty_slot() {
        let d = DirEntry {
            ino: 9,
            name: "notes.txt".to_owned(),
        };
        assert_eq!(DirEntry::decode(&d.encode()), Some(d));
        assert_eq!(DirEntry::decode(&[0u8; DIRENT_BYTES]), None);
    }

    #[test]
    fn dirent_name_max_fits() {
        let d = DirEntry {
            ino: 1,
            name: "a".repeat(NAME_MAX),
        };
        assert_eq!(DirEntry::decode(&d.encode()), Some(d));
    }

    #[test]
    #[should_panic(expected = "name too long")]
    fn oversize_name_panics() {
        let d = DirEntry {
            ino: 1,
            name: "a".repeat(NAME_MAX + 1),
        };
        let _ = d.encode();
    }

    #[test]
    fn superblock_round_trip() {
        let mut page = vec![0u8; 512];
        let sb = Superblock::fresh();
        sb.encode_into(&mut page);
        assert_eq!(Superblock::decode(&page), Some(sb));
        assert_eq!(Superblock::decode(&vec![0u8; 512]), None);
    }

    #[test]
    fn path_splitting() {
        assert_eq!(split_path("/"), Some(vec![]));
        assert_eq!(split_path("/a/b"), Some(vec!["a", "b"]));
        assert_eq!(split_path("a/b"), None);
        assert_eq!(split_path("/a//b"), None);
        assert_eq!(split_path("/a/../b"), None);
        assert!(split_path(&format!("/{}", "x".repeat(NAME_MAX + 1))).is_none());
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("hello.txt"));
        assert!(!valid_name(""));
        assert!(!valid_name("."));
        assert!(!valid_name(".."));
        assert!(!valid_name("a/b"));
    }
}
