//! File-system error type.

use core::fmt;
use ssmc_storage::StorageError;

/// Errors surfaced by the memory-resident file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path component does not exist.
    NotFound,
    /// Path already exists.
    Exists,
    /// A non-final path component is not a directory.
    NotDir,
    /// Operation needs a file but found a directory.
    IsDir,
    /// Directory must be empty for this operation.
    DirNotEmpty,
    /// A path component exceeds the 26-byte name limit or is empty.
    BadName,
    /// Path is not absolute or contains empty components.
    BadPath,
    /// Unknown file descriptor.
    BadFd,
    /// Descriptor was opened read-only.
    ReadOnly,
    /// Inode numbers exhausted.
    TooManyFiles,
    /// The underlying storage failed (out of space, crashed, device).
    Storage(StorageError),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::Exists => write!(f, "file exists"),
            FsError::NotDir => write!(f, "not a directory"),
            FsError::IsDir => write!(f, "is a directory"),
            FsError::DirNotEmpty => write!(f, "directory not empty"),
            FsError::BadName => write!(f, "invalid or over-long name"),
            FsError::BadPath => write!(f, "invalid path"),
            FsError::BadFd => write!(f, "bad file descriptor"),
            FsError::ReadOnly => write!(f, "descriptor is read-only"),
            FsError::TooManyFiles => write!(f, "inode table exhausted"),
            FsError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for FsError {
    fn from(e: StorageError) -> Self {
        FsError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_storage_errors() {
        let e: FsError = StorageError::NoSpace.into();
        assert!(matches!(e, FsError::Storage(StorageError::NoSpace)));
        assert!(e.to_string().contains("storage"));
    }

    #[test]
    fn displays_are_distinct() {
        let all = [
            FsError::NotFound,
            FsError::Exists,
            FsError::NotDir,
            FsError::IsDir,
            FsError::DirNotEmpty,
            FsError::BadName,
            FsError::BadPath,
            FsError::BadFd,
            FsError::ReadOnly,
            FsError::TooManyFiles,
        ];
        let mut seen = std::collections::HashSet::new();
        for e in all {
            assert!(seen.insert(e.to_string()));
        }
    }
}
