//! Execute-in-place versus demand loading (experiment F6).
//!
//! §3.2: "programs residing in flash memory can be executed in place
//! without loss of performance. There is no need to load their code
//! segment into primary storage before execution, again saving both the
//! storage needed for duplicate copies and the time needed to perform the
//! copies." — the HP OmniBook shipped exactly this.
//!
//! [`launch`] models a program launch either way and reports the latency
//! and DRAM cost; [`run_code`] models steady-state execution as a
//! deterministic instruction-fetch sweep.

use crate::error::VmError;
use crate::space::{MappingKind, Perm};
use crate::vm::{AccessKind, Vm};
use crate::Result;
use ssmc_memfs::FileMap;
use ssmc_sim::SimDuration;
use ssmc_storage::StorageManager;

/// Outcome of a program launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchStats {
    /// Address space the program was mapped into.
    pub asid: u32,
    /// Base virtual address of the mapped text segment.
    pub base: u64,
    /// Time from `exec` to first instruction (map + loader copies).
    pub latency: SimDuration,
    /// DRAM frames consumed by the launch (the duplicate-copy cost).
    pub dram_pages: u64,
    /// Page faults taken during the launch.
    pub faults: u64,
}

/// Launches `program` into `asid`, either executing in place (`xip`) or
/// demand-loading the whole text segment the conventional way, and touches
/// the entry point.
///
/// # Errors
///
/// VM and storage errors (out of frames, protection, device failures).
pub fn launch(
    vm: &mut Vm,
    asid: u32,
    program: &FileMap,
    xip: bool,
    sm: &mut StorageManager,
) -> Result<LaunchStats> {
    if program.pages.is_empty() {
        return Err(VmError::SegFault { addr: 0 });
    }
    let page_size = vm.config().page_size;
    let start = sm.now();
    let frames_before = vm.frames_in_use();
    let faults_before = vm.metrics().faults;
    let kind: fn(Vec<ssmc_storage::PageId>) -> MappingKind = if xip {
        |p| MappingKind::CodeXip { pages: p }
    } else {
        |p| MappingKind::CodeLoad { pages: p }
    };
    let base = vm.map_pages(asid, program.pages.clone(), Perm::RX, kind)?;
    if xip {
        // Only the entry point is touched; everything else stays in flash.
        vm.touch(asid, base, AccessKind::Exec, sm)?;
    } else {
        // The conventional loader copies the whole text segment up front.
        for i in 0..program.pages.len() as u64 {
            vm.touch(asid, base + i * page_size, AccessKind::Exec, sm)?;
        }
    }
    Ok(LaunchStats {
        asid,
        base,
        latency: sm.now().since(start),
        dram_pages: vm.frames_in_use() - frames_before,
        faults: vm.metrics().faults - faults_before,
    })
}

/// Models steady-state execution: `touches` instruction fetches striding
/// through the mapped text of `size_bytes`, returning total fetch time.
///
/// # Errors
///
/// VM and storage errors.
pub fn run_code(
    vm: &mut Vm,
    asid: u32,
    base: u64,
    size_bytes: u64,
    touches: u64,
    sm: &mut StorageManager,
) -> Result<SimDuration> {
    let start = sm.now();
    let stride = 68; // co-prime-ish with the page size: spreads touches
    for i in 0..touches {
        let offset = (i * stride) % size_bytes.max(1);
        vm.touch(asid, base + offset, AccessKind::Exec, sm)?;
    }
    Ok(sm.now().since(start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmConfig;
    use ssmc_device::FlashSpec;
    use ssmc_memfs::{MemFs, WritePolicy};
    use ssmc_sim::Clock;
    use ssmc_storage::StorageConfig;

    /// Builds an FS with a program file of `kb` kilobytes, returns the FS
    /// and the program's map.
    fn setup(kb: usize) -> (Vm, MemFs, FileMap) {
        let clock = Clock::shared();
        let sm = StorageManager::new(
            StorageConfig {
                page_size: 512,
                dram_buffer_bytes: 64 * 512,
                flash: FlashSpec {
                    banks: 1,
                    blocks_per_bank: 200,
                    block_bytes: 16 * 1024,
                    write_unit: 512,
                    ..FlashSpec::default()
                },
                ..StorageConfig::default()
            },
            clock.clone(),
        );
        let mut fs = MemFs::new(sm, WritePolicy::CopyOnWrite).expect("mount");
        let fd = fs.create("/app").expect("create");
        fs.write(fd, 0, &vec![0xC3u8; kb * 1024]).expect("write");
        fs.sync().expect("sync");
        let map = fs.map_file("/app").expect("map");
        let vm = Vm::new(
            VmConfig {
                dram_frames: 4096,
                ..VmConfig::default()
            },
            clock,
        );
        (vm, fs, map)
    }

    #[test]
    fn xip_launch_is_faster_and_uses_no_dram() {
        let (mut vm, mut fs, map) = setup(256);
        let asid = vm.create_space();
        let xip = launch(&mut vm, asid, &map, true, fs.storage_mut()).expect("xip");
        let asid2 = vm.create_space();
        let load = launch(&mut vm, asid2, &map, false, fs.storage_mut()).expect("load");
        assert!(
            xip.latency < load.latency / 10,
            "xip {} vs load {}",
            xip.latency,
            load.latency
        );
        assert_eq!(xip.dram_pages, 0);
        assert_eq!(load.dram_pages, map.pages.len() as u64);
    }

    #[test]
    fn xip_launch_latency_is_flat_in_binary_size() {
        let (mut vm_small, mut fs_small, map_small) = setup(64);
        let a = vm_small.create_space();
        let small = launch(&mut vm_small, a, &map_small, true, fs_small.storage_mut())
            .expect("small")
            .latency;
        let (mut vm_big, mut fs_big, map_big) = setup(1024);
        let b = vm_big.create_space();
        let big = launch(&mut vm_big, b, &map_big, true, fs_big.storage_mut())
            .expect("big")
            .latency;
        // 16x the binary, ~same launch cost.
        assert!(
            big < small * 3,
            "xip launch should be ~flat: {small} → {big}"
        );
    }

    #[test]
    fn steady_state_execution_works_both_ways() {
        let (mut vm, mut fs, map) = setup(64);
        let asid = vm.create_space();
        let xip = launch(&mut vm, asid, &map, true, fs.storage_mut()).expect("xip");
        let t_xip =
            run_code(&mut vm, asid, xip.base, map.size, 500, fs.storage_mut()).expect("run");
        let asid2 = vm.create_space();
        let load = launch(&mut vm, asid2, &map, false, fs.storage_mut()).expect("load");
        let t_load =
            run_code(&mut vm, asid2, load.base, map.size, 500, fs.storage_mut()).expect("run");
        // Flash fetches are slower than DRAM but the same order of
        // magnitude — "without loss of performance" vs a disk-based
        // alternative whose fetches would be milliseconds.
        assert!(t_xip >= t_load, "flash fetch is not faster than DRAM");
        assert!(t_xip < t_load * 100, "xip run {t_xip} vs load run {t_load}");
    }

    #[test]
    fn empty_program_is_rejected() {
        let (mut vm, mut fs, _) = setup(4);
        let asid = vm.create_space();
        let empty = FileMap {
            ino: 99,
            size: 0,
            pages: vec![],
        };
        assert!(launch(&mut vm, asid, &empty, true, fs.storage_mut()).is_err());
    }
}
