//! The VM engine: frame pool, fault handling, and the optional pager.

use crate::error::VmError;
use crate::page_table::{Backing, Pte};
use crate::space::{AddressSpace, MappingKind, Perm};
use crate::Result;
use ssmc_device::{Dram, DramSpec};
use ssmc_sim::obs::{EventKind, MetricsRegistry, Recorder, Span};
use ssmc_sim::timeline::SampleBuf;
use ssmc_sim::{Energy, SharedClock, SimDuration, TimeWeighted};
use ssmc_storage::{PageId, StorageManager};
use std::collections::VecDeque;

/// First logical page id of the swap area. The file system assigns pages
/// below this (inode windows are `ino << 32` with 32-bit inos), so swap
/// slots can never collide with file pages.
pub const SWAP_BASE: PageId = 0xFFFF_FFFF_0000_0000;

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Exec,
}

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Page size in bytes; must match the storage manager's.
    pub page_size: u64,
    /// DRAM frames available to the VM (data/stack/heap + load copies).
    pub dram_frames: u64,
    /// Timing/energy model of the VM's DRAM.
    pub dram: DramSpec,
    /// Bytes fetched per touch (a cache-line fill).
    pub fetch_bytes: u64,
    /// Page-table walk latency charged per fault.
    pub table_walk: SimDuration,
    /// Allow swapping anonymous pages to storage when frames run out —
    /// the capacity-expansion mode §3.2 expects to become unnecessary.
    pub enable_paging: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            page_size: 512,
            dram_frames: 4096,
            dram: DramSpec::default(),
            fetch_bytes: 64,
            table_walk: SimDuration::from_nanos(400),
            enable_paging: false,
        }
    }
}

impl VmConfig {
    /// Bits of virtual page number for this page size (64 − offset bits).
    pub fn vpn_bits(&self) -> u32 {
        64 - self.page_size.trailing_zeros()
    }
}

/// VM counters.
#[derive(Debug)]
pub struct VmMetrics {
    /// Total page faults.
    pub faults: u64,
    /// Faults resolved without any copy (XIP maps, zero-fill, in-place
    /// file maps).
    pub minor_faults: u64,
    /// Faults that copied a page (demand load, COW, swap-in).
    pub major_faults: u64,
    /// Copy-on-write copies performed.
    pub cow_copies: u64,
    /// Pages copied by demand loading.
    pub pages_loaded: u64,
    /// Pages swapped out.
    pub swap_outs: u64,
    /// Pages swapped back in.
    pub swap_ins: u64,
    /// Frames in use over time.
    pub frames_used: TimeWeighted,
}

/// The virtual memory system.
#[derive(Debug)]
pub struct Vm {
    cfg: VmConfig,
    clock: SharedClock,
    dram: Dram,
    free_frames: Vec<u64>,
    /// FIFO eviction queue of `(asid, vpn, frame)`; stale entries are
    /// skipped at pop time.
    fifo: VecDeque<(u32, u64, u64)>,
    /// Address spaces in a slab indexed by asid. Asids are issued
    /// sequentially from 1 and never reused, so the slab stays dense;
    /// slot 0 is permanently empty.
    spaces: Vec<Option<AddressSpace>>,
    next_asid: u32,
    next_swap_slot: u64,
    metrics: VmMetrics,
    recorder: Recorder,
    scratch: Vec<u8>,
    /// Reusable cache-line buffer for `touch` accesses.
    line: Vec<u8>,
}

impl Vm {
    /// Creates a VM with an empty frame pool of the configured size.
    pub fn new(cfg: VmConfig, clock: SharedClock) -> Self {
        let dram_spec = cfg
            .dram
            .clone()
            .with_capacity((cfg.dram_frames * cfg.page_size).max(cfg.page_size));
        let dram = Dram::new(dram_spec, clock.clone());
        Vm {
            free_frames: (0..cfg.dram_frames).rev().collect(),
            fifo: VecDeque::new(),
            spaces: Vec::new(),
            next_asid: 1,
            next_swap_slot: 0,
            metrics: VmMetrics {
                faults: 0,
                minor_faults: 0,
                major_faults: 0,
                cow_copies: 0,
                pages_loaded: 0,
                swap_outs: 0,
                swap_ins: 0,
                frames_used: TimeWeighted::new(clock.now(), 0.0),
            },
            recorder: Recorder::disabled(),
            scratch: vec![0u8; cfg.page_size as usize],
            line: Vec::new(),
            cfg,
            clock,
            dram,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &VmConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn metrics(&self) -> &VmMetrics {
        &self.metrics
    }

    /// Installs an observability recorder; fault and XIP spans land in it.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Folds the VM counters into the unified registry under `vm.*`.
    pub fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter("vm.faults", self.metrics.faults);
        reg.counter("vm.minor_faults", self.metrics.minor_faults);
        reg.counter("vm.major_faults", self.metrics.major_faults);
        reg.counter("vm.cow_copies", self.metrics.cow_copies);
        reg.counter("vm.pages_loaded", self.metrics.pages_loaded);
        reg.counter("vm.swap_outs", self.metrics.swap_outs);
        reg.counter("vm.swap_ins", self.metrics.swap_ins);
        reg.time_weighted("vm.frames_used", self.metrics.frames_used.clone());
        for (component, e) in self.dram.energy().iter() {
            reg.counter(&format!("energy.vm_{component}_nj"), e.as_nanojoules());
        }
    }

    /// Timeline channels for the VM: the `vm.*` counters, the current
    /// frame occupancy as a level, and the scalar DRAM energy total (the
    /// per-component ledger grows lazily and cannot be a fixed-width
    /// channel). Name closures only run during registration.
    pub fn sample_timeline(&self, buf: &mut SampleBuf) {
        buf.counter(|| "vm.faults".into(), self.metrics.faults);
        buf.counter(|| "vm.minor_faults".into(), self.metrics.minor_faults);
        buf.counter(|| "vm.major_faults".into(), self.metrics.major_faults);
        buf.counter(|| "vm.cow_copies".into(), self.metrics.cow_copies);
        buf.counter(|| "vm.pages_loaded".into(), self.metrics.pages_loaded);
        buf.counter(|| "vm.swap_outs".into(), self.metrics.swap_outs);
        buf.counter(|| "vm.swap_ins".into(), self.metrics.swap_ins);
        buf.gauge(|| "vm.frames_used".into(), self.metrics.frames_used.level());
        buf.counter(
            || "energy.vm_total_nj".into(),
            self.dram.energy().total().as_nanojoules(),
        );
    }

    /// VM DRAM energy so far, or zero when the recorder is off (avoids
    /// walking the ledger on the hot path).
    fn span_energy_mark(&self) -> Energy {
        if self.recorder.is_enabled() {
            self.dram.energy().total()
        } else {
            Energy::ZERO
        }
    }

    /// The VM's DRAM device (energy accounting).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Charges refresh power for a span of idleness.
    pub fn charge_idle(&mut self, d: SimDuration, self_refresh: bool) {
        self.dram.charge_refresh(d, self_refresh);
    }

    /// Frames currently in use.
    pub fn frames_in_use(&self) -> u64 {
        self.cfg.dram_frames - self.free_frames.len() as u64
    }

    fn note_frames(&mut self) {
        let used = self.frames_in_use() as f64;
        self.metrics.frames_used.set(self.clock.now(), used);
    }

    /// Creates a new protection domain.
    pub fn create_space(&mut self) -> u32 {
        let asid = self.next_asid;
        self.next_asid += 1;
        let idx = asid as usize;
        if self.spaces.len() <= idx {
            self.spaces.resize_with(idx + 1, || None);
        }
        self.spaces[idx] = Some(AddressSpace::new(asid, self.cfg.vpn_bits()));
        asid
    }

    /// Immutable access to a space.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAsid`] for unknown identifiers.
    pub fn space(&self, asid: u32) -> Result<&AddressSpace> {
        self.spaces
            .get(asid as usize)
            .and_then(|s| s.as_ref())
            .ok_or(VmError::BadAsid(asid))
    }

    /// Mutable access to a space.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAsid`] for unknown identifiers.
    pub fn space_mut(&mut self, asid: u32) -> Result<&mut AddressSpace> {
        self.spaces
            .get_mut(asid as usize)
            .and_then(|s| s.as_mut())
            .ok_or(VmError::BadAsid(asid))
    }

    /// Destroys a space, releasing its frames.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAsid`] for unknown identifiers.
    pub fn destroy_space(&mut self, asid: u32) -> Result<()> {
        self.spaces
            .get_mut(asid as usize)
            .and_then(Option::take)
            .ok_or(VmError::BadAsid(asid))?;
        // Every frame the space held is identified by its FIFO entries;
        // the page table died with the space.
        let mut kept = VecDeque::new();
        while let Some((a, vpn, frame)) = self.fifo.pop_front() {
            if a == asid {
                self.free_frames.push(frame);
            } else {
                kept.push_back((a, vpn, frame));
            }
        }
        self.fifo = kept;
        self.note_frames();
        Ok(())
    }

    /// Maps anonymous zero-filled memory, returning the base address.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAsid`] for unknown identifiers.
    pub fn map_anonymous(&mut self, asid: u32, pages: u64, perm: Perm) -> Result<u64> {
        let page_size = self.cfg.page_size;
        let space = self.space_mut(asid)?;
        let base = space.map_region(pages, perm, MappingKind::Anonymous);
        Ok(base * page_size)
    }

    /// Maps file pages with the given kind, returning the base address.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAsid`] for unknown identifiers.
    pub fn map_pages(
        &mut self,
        asid: u32,
        pages: Vec<PageId>,
        perm: Perm,
        kind_fn: fn(Vec<PageId>) -> MappingKind,
    ) -> Result<u64> {
        let page_size = self.cfg.page_size;
        let n = pages.len() as u64;
        let space = self.space_mut(asid)?;
        let base = space.map_region(n, perm, kind_fn(pages));
        Ok(base * page_size)
    }

    fn alloc_frame(&mut self, sm: &mut StorageManager) -> Result<u64> {
        if let Some(f) = self.free_frames.pop() {
            self.note_frames();
            return Ok(f);
        }
        if !self.cfg.enable_paging {
            return Err(VmError::OutOfMemory);
        }
        self.evict_one(sm)?;
        self.free_frames
            .pop()
            .ok_or(VmError::OutOfMemory)
            .inspect(|_f| {
                self.note_frames();
            })
    }

    /// Evicts one resident page (FIFO order), writing anonymous pages to
    /// swap and dirty file pages back to their file.
    fn evict_one(&mut self, sm: &mut StorageManager) -> Result<()> {
        while let Some((asid, vpn, frame)) = self.fifo.pop_front() {
            let Some(space) = self.spaces.get_mut(asid as usize).and_then(|s| s.as_mut()) else {
                self.free_frames.push(frame);
                return Ok(());
            };
            let Some(pte) = space.table.get(vpn) else {
                self.free_frames.push(frame);
                return Ok(());
            };
            if pte.backing != Backing::Frame(frame) {
                continue; // stale queue entry
            }
            let region = space
                .region_of(vpn)
                .cloned()
                .expect("present PTE inside a region");
            match &region.kind {
                MappingKind::Anonymous => {
                    let slot = SWAP_BASE + self.next_swap_slot;
                    self.next_swap_slot += 1;
                    self.dram
                        .read(frame * self.cfg.page_size, &mut self.scratch)
                        .map_err(ssmc_storage::StorageError::from)?;
                    sm.write_page(slot, &self.scratch)?;
                    let space = self.spaces[asid as usize].as_mut().expect("checked");
                    space.table.map(
                        vpn,
                        Pte {
                            writable: false,
                            cow: false,
                            dirty: false,
                            backing: Backing::Storage(slot),
                        },
                    );
                    self.metrics.swap_outs += 1;
                }
                MappingKind::CodeLoad { .. } | MappingKind::CodeXip { .. } => {
                    // Clean code copy: just drop it; the next fetch
                    // re-faults from the file.
                    space.table.unmap(vpn);
                }
                MappingKind::FileCow { .. } => {
                    if pte.dirty {
                        let page = region.storage_page(vpn).expect("file page");
                        self.dram
                            .read(frame * self.cfg.page_size, &mut self.scratch)
                            .map_err(ssmc_storage::StorageError::from)?;
                        sm.write_page(page, &self.scratch)?;
                    }
                    let page = region.storage_page(vpn).expect("file page");
                    space.table.map(
                        vpn,
                        Pte {
                            writable: false,
                            cow: true,
                            dirty: false,
                            backing: Backing::Storage(page),
                        },
                    );
                }
            }
            self.free_frames.push(frame);
            return Ok(());
        }
        Err(VmError::OutOfMemory)
    }

    fn copy_in(&mut self, sm: &mut StorageManager, src: PageId, frame: u64) -> Result<()> {
        sm.read_page(src, &mut self.scratch)?;
        self.dram
            .write(frame * self.cfg.page_size, &self.scratch)
            .map_err(ssmc_storage::StorageError::from)?;
        Ok(())
    }

    /// Handles a fault at `vpn`.
    fn fault(
        &mut self,
        asid: u32,
        vpn: u64,
        kind: AccessKind,
        sm: &mut StorageManager,
    ) -> Result<()> {
        self.metrics.faults += 1;
        let span_start = self.clock.now();
        let e0 = self.span_energy_mark();
        let majors0 = self.metrics.major_faults;
        self.clock.advance(self.cfg.table_walk);
        let addr = vpn * self.cfg.page_size;
        let space = self
            .spaces
            .get_mut(asid as usize)
            .and_then(|s| s.as_mut())
            .ok_or(VmError::BadAsid(asid))?;
        let region = space
            .region_of(vpn)
            .cloned()
            .ok_or(VmError::SegFault { addr })?;
        let allowed = match kind {
            AccessKind::Read => region.perm.read,
            AccessKind::Write => region.perm.write,
            AccessKind::Exec => region.perm.exec,
        };
        if !allowed {
            return Err(VmError::Protection { addr });
        }
        let existing = space.table.get(vpn);
        match existing {
            None => match &region.kind {
                MappingKind::Anonymous => {
                    let frame = self.alloc_frame(sm)?;
                    // Zero-fill: one DRAM page write.
                    self.scratch.fill(0);
                    self.dram
                        .write(frame * self.cfg.page_size, &self.scratch)
                        .map_err(ssmc_storage::StorageError::from)?;
                    let space = self.spaces[asid as usize].as_mut().expect("checked");
                    space.table.map(
                        vpn,
                        Pte {
                            writable: region.perm.write,
                            cow: false,
                            dirty: kind == AccessKind::Write,
                            backing: Backing::Frame(frame),
                        },
                    );
                    self.fifo.push_back((asid, vpn, frame));
                    self.metrics.minor_faults += 1;
                }
                MappingKind::CodeXip { .. } => {
                    // Execute in place: map the flash page directly.
                    let page = region.storage_page(vpn).ok_or(VmError::SegFault { addr })?;
                    space.table.map(
                        vpn,
                        Pte {
                            writable: false,
                            cow: false,
                            dirty: false,
                            backing: Backing::Storage(page),
                        },
                    );
                    self.metrics.minor_faults += 1;
                }
                MappingKind::CodeLoad { .. } => {
                    let page = region.storage_page(vpn).ok_or(VmError::SegFault { addr })?;
                    let frame = self.alloc_frame(sm)?;
                    self.copy_in(sm, page, frame)?;
                    let space = self.spaces[asid as usize].as_mut().expect("checked");
                    space.table.map(
                        vpn,
                        Pte {
                            writable: false,
                            cow: false,
                            dirty: false,
                            backing: Backing::Frame(frame),
                        },
                    );
                    self.fifo.push_back((asid, vpn, frame));
                    self.metrics.pages_loaded += 1;
                    self.metrics.major_faults += 1;
                }
                MappingKind::FileCow { .. } => {
                    let page = region.storage_page(vpn).ok_or(VmError::SegFault { addr })?;
                    if kind == AccessKind::Write {
                        self.cow_copy(asid, vpn, page, sm)?;
                    } else {
                        space.table.map(
                            vpn,
                            Pte {
                                writable: false,
                                cow: true,
                                dirty: false,
                                backing: Backing::Storage(page),
                            },
                        );
                        self.metrics.minor_faults += 1;
                    }
                }
            },
            Some(pte) => {
                // Present but the access still faulted: COW or swap-in.
                match pte.backing {
                    Backing::Storage(slot) if slot >= SWAP_BASE => {
                        let frame = self.alloc_frame(sm)?;
                        self.copy_in(sm, slot, frame)?;
                        sm.free_page(slot)?;
                        let space = self.spaces[asid as usize].as_mut().expect("checked");
                        space.table.map(
                            vpn,
                            Pte {
                                writable: region.perm.write,
                                cow: false,
                                dirty: kind == AccessKind::Write,
                                backing: Backing::Frame(frame),
                            },
                        );
                        self.fifo.push_back((asid, vpn, frame));
                        self.metrics.swap_ins += 1;
                        self.metrics.major_faults += 1;
                    }
                    Backing::Storage(page) if pte.cow && kind == AccessKind::Write => {
                        self.cow_copy(asid, vpn, page, sm)?;
                    }
                    _ => {
                        return Err(VmError::Protection { addr });
                    }
                }
            }
        }
        let copied = self.metrics.major_faults - majors0;
        self.recorder.emit(|| Span {
            kind: EventKind::VmFault,
            start: span_start,
            end: self.clock.now(),
            energy: Energy::from_nanojoules(
                self.dram.energy().total().as_nanojoules() - e0.as_nanojoules(),
            ),
            pages: copied,
            bytes: copied * self.cfg.page_size,
        });
        Ok(())
    }

    fn cow_copy(
        &mut self,
        asid: u32,
        vpn: u64,
        page: PageId,
        sm: &mut StorageManager,
    ) -> Result<()> {
        let frame = self.alloc_frame(sm)?;
        self.copy_in(sm, page, frame)?;
        let space = self
            .spaces
            .get_mut(asid as usize)
            .and_then(|s| s.as_mut())
            .ok_or(VmError::BadAsid(asid))?;
        space.table.map(
            vpn,
            Pte {
                writable: true,
                cow: false,
                dirty: true,
                backing: Backing::Frame(frame),
            },
        );
        self.fifo.push_back((asid, vpn, frame));
        self.metrics.cow_copies += 1;
        self.metrics.major_faults += 1;
        Ok(())
    }

    /// Writes back the dirty pages of a copy-on-write file mapping to
    /// their file pages and reverts them to clean in-place mappings.
    /// Returns the number of pages written.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAsid`] / [`VmError::SegFault`] for a bad region, and
    /// storage errors from the write-back.
    pub fn msync(&mut self, asid: u32, base_addr: u64, sm: &mut StorageManager) -> Result<u64> {
        let base_vpn = base_addr / self.cfg.page_size;
        let region = self
            .space(asid)?
            .region_of(base_vpn)
            .cloned()
            .ok_or(VmError::SegFault { addr: base_addr })?;
        if !matches!(region.kind, MappingKind::FileCow { .. }) {
            return Ok(0);
        }
        let mut written = 0;
        for vpn in region.base_vpn..region.base_vpn + region.pages {
            let pte = {
                let space = self.spaces[asid as usize].as_ref().expect("checked");
                space.table.get(vpn)
            };
            let Some(pte) = pte else { continue };
            let Backing::Frame(frame) = pte.backing else {
                continue;
            };
            if !pte.dirty {
                continue;
            }
            let file_page = region.storage_page(vpn).expect("file-backed");
            self.dram
                .read(frame * self.cfg.page_size, &mut self.scratch)
                .map_err(ssmc_storage::StorageError::from)?;
            sm.write_page(file_page, &self.scratch)?;
            // The frame stays resident and writable but is clean again.
            let space = self.spaces[asid as usize].as_mut().expect("checked");
            if let Some(p) = space.table.get_mut(vpn) {
                p.dirty = false;
            }
            written += 1;
        }
        Ok(written)
    }

    /// Unmaps the region based at `base_addr`, releasing its frames and
    /// swap slots. With `sync` set, dirty copy-on-write file pages are
    /// written back first (like `munmap` of a `MAP_SHARED`-style region);
    /// otherwise they are discarded. Returns the frames released.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAsid`], plus storage errors from a requested
    /// write-back.
    pub fn munmap(
        &mut self,
        asid: u32,
        base_addr: u64,
        sync: bool,
        sm: &mut StorageManager,
    ) -> Result<u64> {
        if sync {
            // Best effort: only file mappings have anything to sync.
            let _ = self.msync(asid, base_addr, sm);
        }
        let base_vpn = base_addr / self.cfg.page_size;
        let space = self.space_mut(asid)?;
        space.unmap_region(base_vpn);
        let mut released = 0u64;
        // `unmap_region` removed the PTEs; release the frames they held by
        // draining FIFO entries that no longer map to a live frame (any
        // other stale entries get cleaned up as a bonus).
        let mut kept = VecDeque::new();
        while let Some((a, vpn, frame)) = self.fifo.pop_front() {
            let still_mapped = self
                .spaces
                .get(a as usize)
                .and_then(|s| s.as_ref())
                .and_then(|s| s.table.get(vpn))
                .is_some_and(|p| p.backing == Backing::Frame(frame));
            if still_mapped {
                kept.push_back((a, vpn, frame));
            } else {
                self.free_frames.push(frame);
                released += 1;
            }
        }
        self.fifo = kept;
        self.note_frames();
        Ok(released)
    }

    /// Performs one memory access (a cache-line-sized touch), faulting as
    /// needed, and returns the latency experienced.
    ///
    /// # Errors
    ///
    /// [`VmError::SegFault`] / [`VmError::Protection`] for bad accesses,
    /// [`VmError::OutOfMemory`] when frames run out with paging disabled,
    /// and storage errors from fault service.
    // lint: hot-path
    pub fn touch(
        &mut self,
        asid: u32,
        addr: u64,
        kind: AccessKind,
        sm: &mut StorageManager,
    ) -> Result<SimDuration> {
        let start = self.clock.now();
        let vpn = addr / self.cfg.page_size;
        let offset = addr % self.cfg.page_size;
        for _ in 0..3 {
            let pte = {
                let space = self.space(asid)?;
                space.table.get(vpn)
            };
            let Some(pte) = pte else {
                self.fault(asid, vpn, kind, sm)?;
                continue;
            };
            // Exec permission is a region property.
            if kind == AccessKind::Exec {
                let space = self.space(asid)?;
                let region = space.region_of(vpn).ok_or(VmError::SegFault { addr })?;
                if !region.perm.exec {
                    return Err(VmError::Protection { addr });
                }
            }
            if kind == AccessKind::Write && !pte.writable {
                self.fault(asid, vpn, kind, sm)?;
                continue;
            }
            // Swapped-out pages must come back through a major fault; they
            // are not in byte-addressable residence like mapped files.
            if let Backing::Storage(slot) = pte.backing {
                if slot >= SWAP_BASE {
                    self.fault(asid, vpn, kind, sm)?;
                    continue;
                }
            }
            let len = self.cfg.fetch_bytes.min(self.cfg.page_size - offset).max(1) as usize;
            match pte.backing {
                Backing::Frame(f) => {
                    let base = f * self.cfg.page_size + offset;
                    // Resize from empty so a store writes zeros, exactly as
                    // the old fresh allocation did.
                    self.line.clear();
                    self.line.resize(len, 0);
                    if kind == AccessKind::Write {
                        self.dram
                            .write(base, &self.line)
                            .map_err(ssmc_storage::StorageError::from)?;
                        let space = self.spaces[asid as usize].as_mut().expect("checked");
                        if let Some(p) = space.table.get_mut(vpn) {
                            p.dirty = true;
                        }
                    } else {
                        self.dram
                            .read(base, &mut self.line)
                            .map_err(ssmc_storage::StorageError::from)?;
                    }
                }
                Backing::Storage(page) => {
                    debug_assert!(kind != AccessKind::Write, "writes never hit storage PTEs");
                    self.line.clear();
                    self.line.resize(len, 0);
                    sm.read_page_slice(page, offset, &mut self.line)?;
                    if kind == AccessKind::Exec {
                        // Execute in place: the fetch came straight from
                        // flash (the device span carries its energy).
                        self.recorder.emit(|| Span {
                            kind: EventKind::VmXip,
                            start,
                            end: self.clock.now(),
                            energy: Energy::ZERO,
                            pages: 0,
                            bytes: len as u64,
                        });
                    }
                }
            }
            return Ok(self.clock.now().since(start));
        }
        Err(VmError::Protection { addr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::MappingKind;
    use ssmc_device::FlashSpec;
    use ssmc_sim::Clock;
    use ssmc_storage::StorageConfig;

    fn storage(clock: &SharedClock) -> StorageManager {
        StorageManager::new(
            StorageConfig {
                page_size: 512,
                dram_buffer_bytes: 32 * 512,
                flash: FlashSpec {
                    banks: 1,
                    blocks_per_bank: 32,
                    block_bytes: 4096,
                    write_unit: 512,
                    ..FlashSpec::default()
                },
                ..StorageConfig::default()
            },
            clock.clone(),
        )
    }

    fn setup(frames: u64, paging: bool) -> (Vm, StorageManager, SharedClock) {
        let clock = Clock::shared();
        let sm = storage(&clock);
        let vm = Vm::new(
            VmConfig {
                dram_frames: frames,
                enable_paging: paging,
                ..VmConfig::default()
            },
            clock.clone(),
        );
        (vm, sm, clock)
    }

    /// Writes a small "program" into storage and returns its pages.
    fn install_file(sm: &mut StorageManager, pages: u64, first_page: PageId) -> Vec<PageId> {
        let data = vec![0x90u8; 512];
        let ids: Vec<PageId> = (0..pages).map(|i| first_page + i).collect();
        for &p in &ids {
            sm.write_page(p, &data).expect("install");
        }
        sm.sync().expect("sync");
        ids
    }

    #[test]
    fn anonymous_memory_faults_in_and_reads_back() {
        let (mut vm, mut sm, _) = setup(16, false);
        let asid = vm.create_space();
        let base = vm.map_anonymous(asid, 4, Perm::RW).expect("map");
        vm.touch(asid, base, AccessKind::Write, &mut sm)
            .expect("write");
        vm.touch(asid, base + 100, AccessKind::Read, &mut sm)
            .expect("read same page");
        assert_eq!(vm.metrics().faults, 1, "second touch hits the same page");
        assert_eq!(vm.frames_in_use(), 1);
    }

    #[test]
    fn unmapped_access_segfaults() {
        let (mut vm, mut sm, _) = setup(16, false);
        let asid = vm.create_space();
        let err = vm
            .touch(asid, 0x100, AccessKind::Read, &mut sm)
            .expect_err("page zero");
        assert!(matches!(err, VmError::SegFault { .. }));
    }

    #[test]
    fn protection_is_enforced_per_region() {
        let (mut vm, mut sm, _) = setup(16, false);
        let asid = vm.create_space();
        let ro = vm.map_anonymous(asid, 1, Perm::RO).expect("map");
        assert!(matches!(
            vm.touch(asid, ro, AccessKind::Write, &mut sm),
            Err(VmError::Protection { .. })
        ));
        // Data is not executable.
        let rw = vm.map_anonymous(asid, 1, Perm::RW).expect("map");
        vm.touch(asid, rw, AccessKind::Write, &mut sm)
            .expect("write");
        assert!(matches!(
            vm.touch(asid, rw, AccessKind::Exec, &mut sm),
            Err(VmError::Protection { .. })
        ));
    }

    #[test]
    fn spaces_are_isolated() {
        let (mut vm, mut sm, _) = setup(16, false);
        let a = vm.create_space();
        let b = vm.create_space();
        let base = vm.map_anonymous(a, 1, Perm::RW).expect("map in a");
        vm.touch(a, base, AccessKind::Write, &mut sm)
            .expect("write in a");
        // The same numeric address in space b is unmapped.
        assert!(matches!(
            vm.touch(b, base, AccessKind::Read, &mut sm),
            Err(VmError::SegFault { .. })
        ));
    }

    #[test]
    fn xip_uses_no_frames_demand_load_does() {
        let (mut vm, mut sm, _) = setup(64, false);
        let pages = install_file(&mut sm, 8, 5u64 << 32);
        let asid = vm.create_space();
        let xip_base = vm
            .map_pages(asid, pages.clone(), Perm::RX, |p| MappingKind::CodeXip {
                pages: p,
            })
            .expect("map xip");
        for i in 0..8u64 {
            vm.touch(asid, xip_base + i * 512, AccessKind::Exec, &mut sm)
                .expect("xip fetch");
        }
        assert_eq!(vm.frames_in_use(), 0, "XIP copies nothing to DRAM");
        assert_eq!(vm.metrics().pages_loaded, 0);

        let load_base = vm
            .map_pages(asid, pages, Perm::RX, |p| MappingKind::CodeLoad {
                pages: p,
            })
            .expect("map load");
        for i in 0..8u64 {
            vm.touch(asid, load_base + i * 512, AccessKind::Exec, &mut sm)
                .expect("load fetch");
        }
        assert_eq!(vm.frames_in_use(), 8, "demand load copies every page");
        assert_eq!(vm.metrics().pages_loaded, 8);
    }

    #[test]
    fn cow_file_mapping_copies_only_written_pages() {
        let (mut vm, mut sm, _) = setup(64, false);
        let pages = install_file(&mut sm, 4, 6u64 << 32);
        let asid = vm.create_space();
        let base = vm
            .map_pages(
                asid,
                pages,
                Perm {
                    read: true,
                    write: true,
                    exec: false,
                },
                |p| MappingKind::FileCow { pages: p },
            )
            .expect("map cow");
        // Read all four pages: in place, no copies.
        for i in 0..4u64 {
            vm.touch(asid, base + i * 512, AccessKind::Read, &mut sm)
                .expect("read");
        }
        assert_eq!(vm.metrics().cow_copies, 0);
        assert_eq!(vm.frames_in_use(), 0);
        // Write one page: exactly one copy.
        vm.touch(asid, base + 512, AccessKind::Write, &mut sm)
            .expect("cow write");
        assert_eq!(vm.metrics().cow_copies, 1);
        assert_eq!(vm.frames_in_use(), 1);
        // Further writes to the same page are plain DRAM stores.
        vm.touch(asid, base + 600, AccessKind::Write, &mut sm)
            .expect("hot write");
        assert_eq!(vm.metrics().cow_copies, 1);
    }

    #[test]
    fn out_of_frames_without_paging_is_an_error() {
        let (mut vm, mut sm, _) = setup(2, false);
        let asid = vm.create_space();
        let base = vm.map_anonymous(asid, 4, Perm::RW).expect("map");
        vm.touch(asid, base, AccessKind::Write, &mut sm).expect("1");
        vm.touch(asid, base + 512, AccessKind::Write, &mut sm)
            .expect("2");
        assert!(matches!(
            vm.touch(asid, base + 1024, AccessKind::Write, &mut sm),
            Err(VmError::OutOfMemory)
        ));
    }

    #[test]
    fn paging_swaps_out_and_back_in() {
        let (mut vm, mut sm, _) = setup(2, true);
        let asid = vm.create_space();
        let base = vm.map_anonymous(asid, 4, Perm::RW).expect("map");
        for i in 0..4u64 {
            vm.touch(asid, base + i * 512, AccessKind::Write, &mut sm)
                .expect("write");
        }
        assert!(vm.metrics().swap_outs >= 2, "evictions happened");
        // Touch the first page again: swap-in.
        vm.touch(asid, base, AccessKind::Read, &mut sm)
            .expect("swap in");
        assert!(vm.metrics().swap_ins >= 1);
        assert_eq!(vm.frames_in_use(), 2, "pool size respected");
    }

    #[test]
    fn xip_fetch_latency_is_flash_read_scale() {
        let (mut vm, mut sm, _) = setup(16, false);
        let pages = install_file(&mut sm, 1, 7u64 << 32);
        let asid = vm.create_space();
        let base = vm
            .map_pages(asid, pages, Perm::RX, |p| MappingKind::CodeXip { pages: p })
            .expect("map");
        vm.touch(asid, base, AccessKind::Exec, &mut sm)
            .expect("first");
        let steady = vm
            .touch(asid, base + 64, AccessKind::Exec, &mut sm)
            .expect("steady");
        // 64 bytes at 100 ns/B ≈ 6.4 µs: well under a disk access, within
        // ~10x of DRAM — the paper's "without loss of performance".
        assert!(
            steady < SimDuration::from_micros(20),
            "steady fetch {steady}"
        );
    }
}

#[cfg(test)]
mod msync_tests {
    use super::*;
    use crate::space::MappingKind;
    use ssmc_device::FlashSpec;
    use ssmc_sim::Clock;
    use ssmc_storage::StorageConfig;

    fn setup() -> (Vm, StorageManager) {
        let clock = Clock::shared();
        let sm = StorageManager::new(
            StorageConfig {
                page_size: 512,
                dram_buffer_bytes: 32 * 512,
                flash: FlashSpec {
                    banks: 1,
                    blocks_per_bank: 32,
                    block_bytes: 4096,
                    write_unit: 512,
                    ..FlashSpec::default()
                },
                ..StorageConfig::default()
            },
            clock.clone(),
        );
        let vm = Vm::new(VmConfig::default(), clock);
        (vm, sm)
    }

    fn install(sm: &mut StorageManager, pages: u64, base: PageId) -> Vec<PageId> {
        let data = vec![0x11u8; 512];
        let ids: Vec<PageId> = (0..pages).map(|i| base + i).collect();
        for &p in &ids {
            sm.write_page(p, &data).expect("install");
        }
        sm.sync().expect("sync");
        ids
    }

    #[test]
    fn msync_writes_back_only_dirty_pages() {
        let (mut vm, mut sm) = setup();
        let pages = install(&mut sm, 4, 9 << 32);
        let asid = vm.create_space();
        let base = vm
            .map_pages(asid, pages.clone(), Perm::RW, |p| MappingKind::FileCow {
                pages: p,
            })
            .expect("map");
        // Read two pages, write one.
        vm.touch(asid, base, AccessKind::Read, &mut sm)
            .expect("read");
        vm.touch(asid, base + 512, AccessKind::Write, &mut sm)
            .expect("write");
        let before = sm.metrics().pages_written;
        let written = vm.msync(asid, base, &mut sm).expect("msync");
        assert_eq!(written, 1, "only the dirtied page syncs");
        assert_eq!(sm.metrics().pages_written - before, 1);
        // A second msync with nothing new is a no-op.
        assert_eq!(vm.msync(asid, base, &mut sm).expect("msync"), 0);
        // The page is still resident and writable; a new store re-dirties.
        vm.touch(asid, base + 600, AccessKind::Write, &mut sm)
            .expect("write");
        assert_eq!(vm.msync(asid, base, &mut sm).expect("msync"), 1);
    }

    #[test]
    fn msync_of_anonymous_region_is_a_noop() {
        let (mut vm, mut sm) = setup();
        let asid = vm.create_space();
        let base = vm.map_anonymous(asid, 2, Perm::RW).expect("map");
        vm.touch(asid, base, AccessKind::Write, &mut sm)
            .expect("write");
        assert_eq!(vm.msync(asid, base, &mut sm).expect("msync"), 0);
    }

    #[test]
    fn munmap_releases_frames_and_unmaps() {
        let (mut vm, mut sm) = setup();
        let asid = vm.create_space();
        let base = vm.map_anonymous(asid, 4, Perm::RW).expect("map");
        for i in 0..4u64 {
            vm.touch(asid, base + i * 512, AccessKind::Write, &mut sm)
                .expect("write");
        }
        assert_eq!(vm.frames_in_use(), 4);
        let released = vm.munmap(asid, base, false, &mut sm).expect("munmap");
        assert_eq!(released, 4);
        assert_eq!(vm.frames_in_use(), 0);
        assert!(matches!(
            vm.touch(asid, base, AccessKind::Read, &mut sm),
            Err(VmError::SegFault { .. })
        ));
    }

    #[test]
    fn munmap_with_sync_persists_cow_edits() {
        let (mut vm, mut sm) = setup();
        let pages = install(&mut sm, 2, 10 << 32);
        let asid = vm.create_space();
        let base = vm
            .map_pages(asid, pages.clone(), Perm::RW, |p| MappingKind::FileCow {
                pages: p,
            })
            .expect("map");
        vm.touch(asid, base, AccessKind::Write, &mut sm)
            .expect("write");
        let before = sm.metrics().pages_written;
        vm.munmap(asid, base, true, &mut sm).expect("munmap");
        assert_eq!(sm.metrics().pages_written - before, 1, "edit persisted");
        assert_eq!(vm.frames_in_use(), 0);
    }

    #[test]
    fn munmap_without_sync_discards_cow_edits() {
        let (mut vm, mut sm) = setup();
        let pages = install(&mut sm, 2, 11 << 32);
        let asid = vm.create_space();
        let base = vm
            .map_pages(asid, pages.clone(), Perm::RW, |p| MappingKind::FileCow {
                pages: p,
            })
            .expect("map");
        vm.touch(asid, base, AccessKind::Write, &mut sm)
            .expect("write");
        let before = sm.metrics().pages_written;
        vm.munmap(asid, base, false, &mut sm).expect("munmap");
        assert_eq!(sm.metrics().pages_written - before, 0, "edit discarded");
    }
}
