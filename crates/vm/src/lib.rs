//! The virtual memory system (§3.2 of the paper).
//!
//! In the solid-state organisation, virtual memory exists "primarily to
//! provide protection across multiple address spaces, rather than to
//! expand capacity". This crate models exactly that:
//!
//! * a 64-bit single-level address space per protection domain, backed by
//!   a multi-level radix page table ([`page_table`]);
//! * page faults that resolve against either DRAM frames or logical
//!   storage pages ([`vm`]);
//! * **execute-in-place** ([`xip`]): code mapped straight out of flash
//!   with no load-time copy and no duplicate DRAM footprint — experiment
//!   F6's subject — versus conventional demand loading;
//! * copy-on-write for mapped files: reads go to flash in place, the
//!   first write to a page copies just that page into DRAM;
//! * an optional LRU pager that swaps anonymous pages to storage, the
//!   capacity-expansion mode the paper expects to become unnecessary.
//!
//! The VM layer is a *timing and accounting* model: data contents flow
//! through the file system and storage manager; here we track mappings,
//! residency, and charge the device costs of every fault, copy, fetch,
//! and swap.

#![forbid(unsafe_code)]

pub mod error;
pub mod page_table;
pub mod space;
pub mod vm;
pub mod xip;

pub use error::VmError;
pub use page_table::{Backing, PageTable, Pte};
pub use space::{AddressSpace, Mapping, MappingKind, Perm};
pub use vm::{AccessKind, Vm, VmConfig, VmMetrics};
pub use xip::{launch, run_code, LaunchStats};

/// Result alias for VM operations.
pub type Result<T> = core::result::Result<T, VmError>;
