//! Virtual-memory error type.

use core::fmt;
use ssmc_storage::StorageError;

/// Errors surfaced by the VM layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Access to an address no mapping covers.
    SegFault {
        /// Faulting virtual address.
        addr: u64,
    },
    /// Access violated the mapping's permissions (e.g. write to read-only
    /// code, execute from a data region).
    Protection {
        /// Faulting virtual address.
        addr: u64,
    },
    /// No DRAM frame available and paging is disabled.
    OutOfMemory,
    /// Unknown address-space identifier.
    BadAsid(u32),
    /// The backing store failed.
    Storage(StorageError),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::SegFault { addr } => write!(f, "segmentation fault at {addr:#x}"),
            VmError::Protection { addr } => write!(f, "protection violation at {addr:#x}"),
            VmError::OutOfMemory => write!(f, "out of DRAM frames (paging disabled)"),
            VmError::BadAsid(asid) => write!(f, "unknown address space {asid}"),
            VmError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for VmError {
    fn from(e: StorageError) -> Self {
        VmError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_addresses() {
        let e = VmError::SegFault { addr: 0x1000 };
        assert!(e.to_string().contains("0x1000"));
    }

    #[test]
    fn wraps_storage() {
        let e: VmError = StorageError::NoSpace.into();
        assert!(matches!(e, VmError::Storage(_)));
    }
}
