//! A multi-level radix page table over a 64-bit virtual space.
//!
//! The table maps virtual page numbers to [`Pte`]s through 9-bit radix
//! levels (512 entries per node), the x86-64 shape. Interior nodes are
//! allocated lazily, so a sparse 64-bit space costs memory proportional
//! to what is mapped; the node count is exposed so experiments can report
//! the table's own DRAM overhead.

use ssmc_storage::PageId;

/// What a present page is backed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backing {
    /// A DRAM frame (index into the VM's frame pool).
    Frame(u64),
    /// A logical storage page, accessed in place (flash direct mapping or
    /// swap slot).
    Storage(PageId),
}

/// A page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Whether writes are currently allowed without a fault.
    pub writable: bool,
    /// Whether the page is copy-on-write: the first write copies it into
    /// a DRAM frame.
    pub cow: bool,
    /// Dirty since the backing was last synchronised.
    pub dirty: bool,
    /// Where the page lives.
    pub backing: Backing,
}

const RADIX_BITS: u32 = 9;
const FANOUT: usize = 1 << RADIX_BITS;

enum Node {
    Interior(Box<[Option<Node>; FANOUT]>),
    Leaf(Box<[Option<Pte>; FANOUT]>),
}

impl Node {
    fn new_interior() -> Node {
        Node::Interior(Box::new([const { None }; FANOUT]))
    }

    fn new_leaf() -> Node {
        Node::Leaf(Box::new([const { None }; FANOUT]))
    }
}

impl core::fmt::Debug for Node {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Node::Interior(_) => write!(f, "Interior"),
            Node::Leaf(_) => write!(f, "Leaf"),
        }
    }
}

/// A lazily allocated radix page table keyed by virtual page number.
///
/// # Examples
///
/// ```
/// use ssmc_vm::{Backing, PageTable, Pte};
///
/// let mut table = PageTable::new(55);
/// table.map(42, Pte {
///     writable: true,
///     cow: false,
///     dirty: false,
///     backing: Backing::Frame(7),
/// });
/// assert_eq!(table.get(42).unwrap().backing, Backing::Frame(7));
/// assert!(table.get(43).is_none());
/// ```
#[derive(Debug)]
pub struct PageTable {
    root: Node,
    levels: u32,
    nodes: u64,
    mapped: u64,
}

impl PageTable {
    /// Creates a table covering `vpn_bits` bits of virtual page number
    /// (e.g. 55 for a 64-bit space with 512-byte pages).
    pub fn new(vpn_bits: u32) -> Self {
        let levels = vpn_bits.div_ceil(RADIX_BITS).max(1);
        let root = if levels == 1 {
            Node::new_leaf()
        } else {
            Node::new_interior()
        };
        PageTable {
            root,
            levels,
            nodes: 1,
            mapped: 0,
        }
    }

    /// Number of radix levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Allocated table nodes (each one "page-table page" of overhead).
    pub fn node_count(&self) -> u64 {
        self.nodes
    }

    /// Mapped (present) pages.
    pub fn mapped_count(&self) -> u64 {
        self.mapped
    }

    fn index(&self, vpn: u64, level: u32) -> usize {
        ((vpn >> (RADIX_BITS * (self.levels - 1 - level))) & (FANOUT as u64 - 1)) as usize
    }

    /// Installs (or replaces) a mapping. Returns the previous entry.
    pub fn map(&mut self, vpn: u64, pte: Pte) -> Option<Pte> {
        let levels = self.levels;
        let mut created = 0u64;
        let mut node = &mut self.root;
        for level in 0..levels - 1 {
            let idx = ((vpn >> (RADIX_BITS * (levels - 1 - level))) & (FANOUT as u64 - 1)) as usize;
            let Node::Interior(children) = node else {
                unreachable!("interior level holds interior nodes");
            };
            if children[idx].is_none() {
                let child = if level + 2 == levels {
                    Node::new_leaf()
                } else {
                    Node::new_interior()
                };
                children[idx] = Some(child);
                created += 1;
            }
            node = children[idx].as_mut().expect("just ensured");
        }
        let idx = (vpn & (FANOUT as u64 - 1)) as usize;
        let Node::Leaf(entries) = node else {
            unreachable!("last level is a leaf");
        };
        let old = entries[idx].replace(pte);
        self.nodes += created;
        if old.is_none() {
            self.mapped += 1;
        }
        old
    }

    /// Looks up a mapping.
    pub fn get(&self, vpn: u64) -> Option<Pte> {
        let mut node = &self.root;
        for level in 0..self.levels - 1 {
            let idx = self.index(vpn, level);
            let Node::Interior(children) = node else {
                unreachable!();
            };
            node = children[idx].as_ref()?;
        }
        let idx = (vpn & (FANOUT as u64 - 1)) as usize;
        let Node::Leaf(entries) = node else {
            unreachable!();
        };
        entries[idx]
    }

    /// Mutable access to a present entry.
    pub fn get_mut(&mut self, vpn: u64) -> Option<&mut Pte> {
        let levels = self.levels;
        let mut node = &mut self.root;
        for level in 0..levels - 1 {
            let idx = ((vpn >> (RADIX_BITS * (levels - 1 - level))) & (FANOUT as u64 - 1)) as usize;
            let Node::Interior(children) = node else {
                unreachable!();
            };
            node = children[idx].as_mut()?;
        }
        let idx = (vpn & (FANOUT as u64 - 1)) as usize;
        let Node::Leaf(entries) = node else {
            unreachable!();
        };
        entries[idx].as_mut()
    }

    /// Removes a mapping, returning it.
    pub fn unmap(&mut self, vpn: u64) -> Option<Pte> {
        let levels = self.levels;
        let mut node = &mut self.root;
        for level in 0..levels - 1 {
            let idx = ((vpn >> (RADIX_BITS * (levels - 1 - level))) & (FANOUT as u64 - 1)) as usize;
            let Node::Interior(children) = node else {
                unreachable!();
            };
            node = children[idx].as_mut()?;
        }
        let idx = (vpn & (FANOUT as u64 - 1)) as usize;
        let Node::Leaf(entries) = node else {
            unreachable!();
        };
        let old = entries[idx].take();
        if old.is_some() {
            self.mapped -= 1;
        }
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pte(frame: u64) -> Pte {
        Pte {
            writable: true,
            cow: false,
            dirty: false,
            backing: Backing::Frame(frame),
        }
    }

    #[test]
    fn map_get_unmap_round_trip() {
        let mut t = PageTable::new(55);
        assert_eq!(t.levels(), 7); // ceil(55 / 9)
        assert!(t.get(42).is_none());
        t.map(42, pte(7));
        assert_eq!(t.get(42).expect("mapped").backing, Backing::Frame(7));
        assert_eq!(t.mapped_count(), 1);
        let old = t.unmap(42).expect("was mapped");
        assert_eq!(old.backing, Backing::Frame(7));
        assert!(t.get(42).is_none());
        assert_eq!(t.mapped_count(), 0);
    }

    #[test]
    fn distant_vpns_do_not_collide() {
        let mut t = PageTable::new(55);
        let a = 0u64;
        let b = 1 << 54; // far corner of the space
        let c = (1 << 32) | 5; // a file window address
        t.map(a, pte(1));
        t.map(b, pte(2));
        t.map(c, pte(3));
        assert_eq!(t.get(a).expect("a").backing, Backing::Frame(1));
        assert_eq!(t.get(b).expect("b").backing, Backing::Frame(2));
        assert_eq!(t.get(c).expect("c").backing, Backing::Frame(3));
    }

    #[test]
    fn lazy_allocation_scales_with_use() {
        let mut t = PageTable::new(55);
        let empty_nodes = t.node_count();
        // 512 consecutive pages share one leaf chain.
        for vpn in 0..512 {
            t.map(vpn, pte(vpn));
        }
        let dense = t.node_count() - empty_nodes;
        let mut t2 = PageTable::new(55);
        // 8 scattered pages allocate a chain each.
        for i in 0..8u64 {
            t2.map(i << 45, pte(i));
        }
        let sparse = t2.node_count() - empty_nodes;
        assert!(dense < sparse, "dense {dense} vs sparse {sparse}");
    }

    #[test]
    fn remap_returns_previous() {
        let mut t = PageTable::new(30);
        t.map(5, pte(1));
        let old = t.map(5, pte(2)).expect("previous mapping");
        assert_eq!(old.backing, Backing::Frame(1));
        assert_eq!(t.mapped_count(), 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = PageTable::new(30);
        t.map(9, pte(1));
        t.get_mut(9).expect("present").dirty = true;
        assert!(t.get(9).expect("present").dirty);
    }

    #[test]
    fn single_level_table_works() {
        let mut t = PageTable::new(9);
        assert_eq!(t.levels(), 1);
        t.map(3, pte(1));
        assert!(t.get(3).is_some());
        assert!(t.unmap(3).is_some());
    }
}
