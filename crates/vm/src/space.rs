//! Address spaces and mappings.
//!
//! Each protection domain owns an [`AddressSpace`]: a page table plus the
//! list of region mappings faults resolve against. Regions are placed by a
//! simple bump allocator in the 64-bit space — with single-level storage
//! there is no reason to be clever about layout.

use crate::page_table::PageTable;
use ssmc_storage::PageId;

/// Region permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perm {
    /// Reads allowed.
    pub read: bool,
    /// Writes allowed.
    pub write: bool,
    /// Instruction fetches allowed.
    pub exec: bool,
}

impl Perm {
    /// Read-only data.
    pub const RO: Perm = Perm {
        read: true,
        write: false,
        exec: false,
    };
    /// Read-write data.
    pub const RW: Perm = Perm {
        read: true,
        write: true,
        exec: false,
    };
    /// Read-execute code.
    pub const RX: Perm = Perm {
        read: true,
        write: false,
        exec: true,
    };
}

/// What a region is backed by and how faults materialise it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingKind {
    /// Zero-filled private memory (data, stack, heap).
    Anonymous,
    /// Code executed in place from storage: faults map the storage page
    /// directly, copying nothing (§3.2).
    CodeXip {
        /// The file's logical pages, in order.
        pages: Vec<PageId>,
    },
    /// Code demand-loaded the conventional way: faults copy the page into
    /// a DRAM frame.
    CodeLoad {
        /// The file's logical pages, in order.
        pages: Vec<PageId>,
    },
    /// A memory-mapped file: reads in place, copy-on-write on the first
    /// store to each page (§3.1).
    FileCow {
        /// The file's logical pages, in order.
        pages: Vec<PageId>,
    },
}

/// One mapped region.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// First virtual page number.
    pub base_vpn: u64,
    /// Length in pages.
    pub pages: u64,
    /// Access permissions.
    pub perm: Perm,
    /// Backing kind.
    pub kind: MappingKind,
}

impl Mapping {
    /// Whether the region contains `vpn`.
    pub fn contains(&self, vpn: u64) -> bool {
        vpn >= self.base_vpn && vpn < self.base_vpn + self.pages
    }

    /// The storage page backing `vpn`, for file-backed regions.
    pub fn storage_page(&self, vpn: u64) -> Option<PageId> {
        let idx = vpn.checked_sub(self.base_vpn)? as usize;
        match &self.kind {
            MappingKind::Anonymous => None,
            MappingKind::CodeXip { pages }
            | MappingKind::CodeLoad { pages }
            | MappingKind::FileCow { pages } => pages.get(idx).copied(),
        }
    }
}

/// A protection domain: page table plus regions.
#[derive(Debug)]
pub struct AddressSpace {
    /// Identifier.
    pub asid: u32,
    /// The hardware-walked table.
    pub table: PageTable,
    regions: Vec<Mapping>,
    bump_vpn: u64,
}

impl AddressSpace {
    /// Creates an empty space. `vpn_bits` sizes the table (55 bits of VPN
    /// covers the full 64-bit space with 512-byte pages).
    pub fn new(asid: u32, vpn_bits: u32) -> Self {
        AddressSpace {
            asid,
            table: PageTable::new(vpn_bits),
            regions: Vec::new(),
            // Leave page 0 unmapped so null dereferences fault.
            bump_vpn: 1,
        }
    }

    /// Maps a region of `pages` pages, returning its base VPN.
    pub fn map_region(&mut self, pages: u64, perm: Perm, kind: MappingKind) -> u64 {
        let base = self.bump_vpn;
        self.bump_vpn += pages.max(1);
        self.regions.push(Mapping {
            base_vpn: base,
            pages,
            perm,
            kind,
        });
        base
    }

    /// Finds the region covering `vpn`.
    pub fn region_of(&self, vpn: u64) -> Option<&Mapping> {
        self.regions.iter().find(|r| r.contains(vpn))
    }

    /// Removes the region based at `base_vpn`, returning the VPNs that had
    /// present page-table entries (the caller releases their frames).
    pub fn unmap_region(&mut self, base_vpn: u64) -> Vec<u64> {
        let Some(pos) = self.regions.iter().position(|r| r.base_vpn == base_vpn) else {
            return Vec::new();
        };
        let region = self.regions.remove(pos);
        let mut present = Vec::new();
        for vpn in region.base_vpn..region.base_vpn + region.pages {
            if self.table.unmap(vpn).is_some() {
                present.push(vpn);
            }
        }
        present
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut s = AddressSpace::new(1, 55);
        let a = s.map_region(10, Perm::RW, MappingKind::Anonymous);
        let b = s.map_region(5, Perm::RO, MappingKind::Anonymous);
        assert!(a + 10 <= b);
        assert!(s.region_of(a).is_some());
        assert!(s.region_of(a + 9).is_some());
        assert!(s.region_of(b + 4).is_some());
    }

    #[test]
    fn page_zero_stays_unmapped() {
        let mut s = AddressSpace::new(1, 55);
        let a = s.map_region(4, Perm::RW, MappingKind::Anonymous);
        assert!(a >= 1);
        assert!(s.region_of(0).is_none());
    }

    #[test]
    fn storage_page_lookup_per_kind() {
        let mut s = AddressSpace::new(1, 55);
        let base = s.map_region(
            3,
            Perm::RX,
            MappingKind::CodeXip {
                pages: vec![100, 101, 102],
            },
        );
        let r = s.region_of(base + 1).expect("mapped");
        assert_eq!(r.storage_page(base + 1), Some(101));
        let anon = s.map_region(2, Perm::RW, MappingKind::Anonymous);
        assert_eq!(s.region_of(anon).expect("anon").storage_page(anon), None);
    }

    #[test]
    fn unmap_region_returns_present_vpns() {
        use crate::page_table::{Backing, Pte};
        let mut s = AddressSpace::new(1, 55);
        let base = s.map_region(4, Perm::RW, MappingKind::Anonymous);
        s.table.map(
            base + 1,
            Pte {
                writable: true,
                cow: false,
                dirty: false,
                backing: Backing::Frame(3),
            },
        );
        let present = s.unmap_region(base);
        assert_eq!(present, vec![base + 1]);
        assert_eq!(s.region_count(), 0);
        assert!(s.region_of(base).is_none());
    }
}
