//! `ssmc` — a solid-state mobile computer storage stack.
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//! the reproduction of *"Operating System Implications of Solid-State
//! Mobile Computers"* (Cáceres, Douglis, Li & Marsh, HotOS-IV, 1993).
//!
//! * [`sim`] — simulation kernel (clock, events, RNG, statistics, energy).
//! * [`device`] — flash, battery-backed DRAM, and disk models plus the 1993
//!   product catalog and technology-trend extrapolation.
//! * [`trace`] — workload trace format and calibrated synthetic generators.
//! * [`storage`] — the physical storage manager of §3.3: DRAM write
//!   buffering, migration, log-structured flash, garbage collection, wear
//!   leveling, and bank partitioning.
//! * [`memfs`] — the memory-resident file system of §3.1.
//! * [`vm`] — the single-level-store virtual memory of §3.2, including
//!   execute-in-place.
//! * [`baseline`] — the conventional disk-based organisation used as the
//!   comparator.
//! * [`core`] — the assembled [`core::MobileComputer`] machine, metrics,
//!   and the §4 DRAM:flash sizing explorer.
//!
//! # Quickstart
//!
//! ```
//! use ssmc::core::{MachineConfig, MobileComputer};
//!
//! let mut machine = MobileComputer::new(MachineConfig::small_notebook());
//! let fd = machine.fs_create("/notes.txt").unwrap();
//! machine.fs_write(fd, 0, b"flash is the new disk").unwrap();
//! machine.fs_sync().unwrap();
//! let mut buf = vec![0u8; 21];
//! machine.fs_read(fd, 0, &mut buf).unwrap();
//! assert_eq!(&buf, b"flash is the new disk");
//! ```

#![forbid(unsafe_code)]

pub use ssmc_baseline as baseline;
pub use ssmc_core as core;
pub use ssmc_device as device;
pub use ssmc_memfs as memfs;
pub use ssmc_sim as sim;
pub use ssmc_storage as storage;
pub use ssmc_trace as trace;
pub use ssmc_vm as vm;
