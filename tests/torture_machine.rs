//! Machine-level crash-torture: power cuts injected through the full
//! stack (file system, storage manager, flash) at every boundary of a
//! small window, with recovery and consistency checks after each.
//!
//! The storage-level sweep (`ssmc_storage::torture`) checks page
//! durability against a model oracle; these tests check the *file*
//! level: whatever boundary the power dies on, recovery must produce a
//! mountable file system whose fsck passes, whose namespace resolves,
//! and whose synced file contents survive byte-for-byte.

use ssmc::core::{MachineConfig, MobileComputer};
use ssmc::device::{FlashSpec, TearMode};
use ssmc::memfs::{FsError, OpenMode};

/// A small machine with the freshly formatted (empty) namespace already
/// synced to flash, so the root directory is durable before any cut can
/// be armed. Power-cut boundaries are counted from device creation, so
/// callers sweeping cuts must start past the `boundary_ops()` value
/// observed right after construction.
fn torture_machine() -> MobileComputer {
    let mut cfg = MachineConfig::with_sizes("torture", 2 << 20, 8 << 20);
    cfg.write_buffer_bytes = Some(64 << 10);
    let mut m = MobileComputer::new(cfg);
    m.fs().sync().expect("format durable");
    m
}

const BODY_A: &[u8] = &[0xA1; 1500];
const BODY_B: &[u8] = &[0xB2; 3000];

/// The fixed workload every cut replays: phase 1 creates and syncs
/// `/a`, phase 2 creates `/b`, overwrites part of `/a`, and syncs
/// again. Returns the highest phase whose sync completed.
fn workload(m: &mut MobileComputer) -> Result<u32, FsError> {
    let fa = m.fs().create("/a")?;
    m.fs().write(fa, 0, BODY_A)?;
    m.fs().sync()?;
    // Phase 1 durable: /a must survive any later crash.
    let fb = m.fs().create("/b")?;
    m.fs().write(fb, 0, BODY_B)?;
    m.fs().write(fa, 0, &[0xA9; 512])?;
    m.fs().sync()?;
    Ok(2)
}

fn run_workload(m: &mut MobileComputer) -> u32 {
    let mut phase = 0;
    let r = (|| -> Result<(), FsError> {
        let fa = m.fs().create("/a")?;
        m.fs().write(fa, 0, BODY_A)?;
        m.fs().sync()?;
        phase = 1;
        let fb = m.fs().create("/b")?;
        m.fs().write(fb, 0, BODY_B)?;
        m.fs().write(fa, 0, &[0xA9; 512])?;
        m.fs().sync()?;
        phase = 2;
        Ok(())
    })();
    let _ = r; // an error just means the cut fired mid-workload
    phase
}

fn read_all(m: &mut MobileComputer, path: &str, len: usize) -> Vec<u8> {
    let fd = m.fs().open(path, OpenMode::Read).expect("open");
    let mut buf = vec![0u8; len];
    let n = m.fs().read(fd, 0, &mut buf).expect("read");
    buf.truncate(n);
    buf
}

#[test]
fn clean_run_counts_boundaries() {
    let mut m = torture_machine();
    let phase = workload(&mut m).expect("clean run");
    assert_eq!(phase, 2);
    let boundaries = m.fs().storage().boundary_ops();
    assert!(
        boundaries > 10,
        "workload too small to torture ({boundaries} boundaries)"
    );
}

/// Every boundary of the fixed workload, both tear modes: recovery must
/// fsck clean, resolve the namespace, and preserve phase-1 durability.
#[test]
fn every_cut_recovers_a_consistent_file_system() {
    // Boundaries are absolute from device creation: `base` of them are
    // consumed making the empty namespace durable, so only cuts in
    // (base, boundaries] land inside the workload proper.
    let mut probe = torture_machine();
    let base = probe.fs().storage().boundary_ops();
    workload(&mut probe).expect("clean run");
    let boundaries = probe.fs().storage().boundary_ops();
    assert!(boundaries > base, "workload issued no flash ops");

    for tear in [TearMode::Clean, TearMode::Prefix, TearMode::Stripe] {
        for cut in (base + 1)..=boundaries {
            let ctx = format!("{tear:?} cut {cut}/{boundaries}");
            let mut m = torture_machine();
            m.arm_power_cut(cut, tear);
            let phase = run_workload(&mut m);
            assert!(m.power_cut_fired(), "{ctx}: cut must fire");
            m.battery_failure();
            let (_, fsck) = m.replace_battery_and_recover().expect("recover");
            assert!(!fsck.root_rebuilt, "{ctx}: root lost");
            // The namespace must fully resolve.
            for e in m.fs().list_dir("/").expect("list") {
                m.fs().stat(&format!("/{}", e.name)).expect("resolves");
            }
            // Phase-1 durability: /a synced before the second phase, so
            // once phase >= 1 it must exist with either its synced body
            // or (phase 2 synced in full before the cut is impossible —
            // the workload ends at the sync) the partially newer image
            // never surfaces as a torn mix: the head is either all-old
            // or all-new.
            if phase >= 1 {
                let got = read_all(&mut m, "/a", BODY_A.len());
                assert_eq!(got.len(), BODY_A.len(), "{ctx}: /a truncated");
                let head_old = got[..512] == BODY_A[..512];
                let head_new = got[..512] == [0xA9; 512];
                assert!(head_old || head_new, "{ctx}: torn mix in /a");
                assert_eq!(&got[512..], &BODY_A[512..], "{ctx}: /a tail");
            }
        }
    }
}

/// A power cut torn through a checkpoint write must leave the previous
/// snapshot usable at the machine level.
#[test]
fn torn_checkpoint_recovers_at_machine_level() {
    let mut m = torture_machine();
    let fa = m.fs().create("/keep").expect("create");
    m.fs().write(fa, 0, BODY_A).expect("write");
    m.fs().sync().expect("sync");
    m.fs().storage_mut().checkpoint().expect("checkpoint");
    let fb = m.fs().create("/more").expect("create");
    m.fs().write(fb, 0, BODY_B).expect("write");
    m.fs().sync().expect("sync");
    // Tear the next checkpoint mid-write.
    let at = m.fs().storage().boundary_ops() + 2;
    m.arm_power_cut(at, TearMode::Prefix);
    m.fs()
        .storage_mut()
        .checkpoint()
        .expect_err("checkpoint hits the cut");
    assert!(m.power_cut_fired());
    m.battery_failure();
    let (report, fsck) = m.replace_battery_and_recover().expect("recover");
    assert!(report.used_checkpoint, "previous snapshot still valid");
    assert!(!fsck.root_rebuilt);
    assert_eq!(read_all(&mut m, "/keep", BODY_A.len()), BODY_A);
    assert_eq!(read_all(&mut m, "/more", BODY_B.len()), BODY_B);
}

/// Checkpoint-block wear-out mid-run: recovery after a later crash must
/// full-scan and still restore every synced file.
#[test]
fn checkpoint_wearout_recovers_at_machine_level() {
    let mut cfg = MachineConfig::with_sizes("torture-wear", 2 << 20, 8 << 20);
    cfg.write_buffer_bytes = Some(64 << 10);
    cfg.storage.flash = FlashSpec {
        endurance: 2,
        ..cfg.storage.flash
    };
    let mut m = MobileComputer::new(cfg);
    let fa = m.fs().create("/keep").expect("create");
    m.fs().write(fa, 0, BODY_A).expect("write");
    m.fs().sync().expect("sync");
    // Ping-pong until a checkpoint block wears out and the mechanism
    // disables itself.
    for _ in 0..5 {
        m.fs().storage_mut().checkpoint().expect("checkpoint");
    }
    let fb = m.fs().create("/late").expect("create");
    m.fs().write(fb, 0, BODY_B).expect("write");
    m.fs().sync().expect("sync");
    m.battery_failure();
    let (report, fsck) = m.replace_battery_and_recover().expect("recover");
    assert!(
        !report.used_checkpoint,
        "stale checkpoint must not bound the scan"
    );
    assert!(!fsck.root_rebuilt);
    assert_eq!(read_all(&mut m, "/keep", BODY_A.len()), BODY_A);
    assert_eq!(read_all(&mut m, "/late", BODY_B.len()), BODY_B);
}
