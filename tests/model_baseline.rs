//! Property-based test: the conventional disk file system against a
//! size/existence model, plus cross-organisation trace equivalence.

use proptest::prelude::*;
use ssmc::baseline::{BaselineConfig, DiskFs, FfsError};
use ssmc::sim::Clock;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Create(u64),
    Write(u64, u32, u32),
    Read(u64, u32, u32),
    Truncate(u64, u32),
    Delete(u64),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let file = 0..6u64;
    prop_oneof![
        2 => file.clone().prop_map(Op::Create),
        4 => (file.clone(), 0..100_000u32, 1..40_000u32).prop_map(|(f, o, l)| Op::Write(f, o, l)),
        3 => (file.clone(), 0..120_000u32, 1..40_000u32).prop_map(|(f, o, l)| Op::Read(f, o, l)),
        1 => (file.clone(), 0..100_000u32).prop_map(|(f, l)| Op::Truncate(f, l)),
        1 => file.prop_map(Op::Delete),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn diskfs_matches_size_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let clock = Clock::shared();
        let mut fs = DiskFs::new(
            BaselineConfig {
                spin_down: None,
                ..BaselineConfig::default()
            },
            clock,
        );
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Create(f) => {
                    let real = fs.create(f);
                    match model.entry(f) {
                        std::collections::hash_map::Entry::Occupied(_) => {
                            prop_assert_eq!(real, Err(FfsError::Exists(f)));
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            prop_assert!(real.is_ok());
                            v.insert(0);
                        }
                    }
                }
                Op::Write(f, off, len) => {
                    let real = fs.write(f, off as u64, len as u64);
                    match model.get_mut(&f) {
                        Some(size) => {
                            prop_assert!(real.is_ok(), "write failed: {:?}", real.err());
                            *size = (*size).max(off as u64 + len as u64);
                        }
                        None => prop_assert_eq!(real, Err(FfsError::UnknownFile(f))),
                    }
                }
                Op::Read(f, off, len) => {
                    let real = fs.read(f, off as u64, len as u64);
                    if model.contains_key(&f) {
                        prop_assert!(real.is_ok());
                    } else {
                        prop_assert_eq!(real, Err(FfsError::UnknownFile(f)));
                    }
                }
                Op::Truncate(f, len) => {
                    let real = fs.truncate(f, len as u64);
                    match model.get_mut(&f) {
                        Some(size) => {
                            prop_assert!(real.is_ok());
                            *size = len as u64;
                        }
                        None => prop_assert_eq!(real, Err(FfsError::UnknownFile(f))),
                    }
                }
                Op::Delete(f) => {
                    let real = fs.delete(f);
                    if model.remove(&f).is_some() {
                        prop_assert!(real.is_ok());
                    } else {
                        prop_assert_eq!(real, Err(FfsError::UnknownFile(f)));
                    }
                }
                Op::Flush => fs.flush_all(),
            }
            // Sizes agree at every step.
            for (&f, &size) in &model {
                prop_assert_eq!(fs.size_of(f), Some(size), "size of {}", f);
            }
            prop_assert_eq!(fs.file_count(), model.len());
        }
        // Flushing leaves no dirty blocks behind.
        fs.flush_all();
        prop_assert_eq!(fs.cache().dirty_count(), 0);
    }
}
