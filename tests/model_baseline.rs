//! Randomized-model test: the conventional disk file system against a
//! size/existence model, driven by fixed `SimRng` seeds so every run
//! exercises identical sequences.

use ssmc::baseline::{BaselineConfig, DiskFs, FfsError};
use ssmc::sim::{Clock, SimRng};
use std::collections::HashMap;

/// Base seed for the deterministic case generator.
const SEED: u64 = 0xBA5E_11FE;

#[derive(Debug, Clone)]
enum Op {
    Create(u64),
    Write(u64, u32, u32),
    Read(u64, u32, u32),
    Truncate(u64, u32),
    Delete(u64),
    Flush,
}

/// Mirrors the old proptest weights: Create 2, Write 4, Read 3,
/// Truncate/Delete/Flush 1 each (total 12), over a six-file universe.
fn random_op(rng: &mut SimRng) -> Op {
    let file = |rng: &mut SimRng| rng.below(6);
    match rng.below(12) {
        0..=1 => Op::Create(file(rng)),
        2..=5 => Op::Write(file(rng), rng.below(100_000) as u32, 1 + rng.below(39_999) as u32),
        6..=8 => Op::Read(file(rng), rng.below(120_000) as u32, 1 + rng.below(39_999) as u32),
        9 => Op::Truncate(file(rng), rng.below(100_000) as u32),
        10 => Op::Delete(file(rng)),
        _ => Op::Flush,
    }
}

#[test]
fn diskfs_matches_size_model() {
    for case in 0..32u64 {
        let seed = SEED + case;
        let mut rng = SimRng::seed_from_u64(seed);
        let ops: Vec<Op> = (0..1 + rng.below(79)).map(|_| random_op(&mut rng)).collect();

        let clock = Clock::shared();
        let mut fs = DiskFs::new(
            BaselineConfig {
                spin_down: None,
                ..BaselineConfig::default()
            },
            clock,
        );
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Create(f) => {
                    let real = fs.create(f);
                    match model.entry(f) {
                        std::collections::hash_map::Entry::Occupied(_) => {
                            assert_eq!(
                                real,
                                Err(FfsError::Exists(f)),
                                "seed {seed}: double create {f}"
                            );
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            assert!(real.is_ok(), "seed {seed}: create {f} failed");
                            v.insert(0);
                        }
                    }
                }
                Op::Write(f, off, len) => {
                    let real = fs.write(f, off as u64, len as u64);
                    match model.get_mut(&f) {
                        Some(size) => {
                            assert!(
                                real.is_ok(),
                                "seed {seed}: write failed: {:?}",
                                real.err()
                            );
                            *size = (*size).max(off as u64 + len as u64);
                        }
                        None => assert_eq!(
                            real,
                            Err(FfsError::UnknownFile(f)),
                            "seed {seed}: write to ghost {f}"
                        ),
                    }
                }
                Op::Read(f, off, len) => {
                    let real = fs.read(f, off as u64, len as u64);
                    if model.contains_key(&f) {
                        assert!(real.is_ok(), "seed {seed}: read of {f} failed");
                    } else {
                        assert_eq!(
                            real,
                            Err(FfsError::UnknownFile(f)),
                            "seed {seed}: read of ghost {f}"
                        );
                    }
                }
                Op::Truncate(f, len) => {
                    let real = fs.truncate(f, len as u64);
                    match model.get_mut(&f) {
                        Some(size) => {
                            assert!(real.is_ok(), "seed {seed}: truncate of {f} failed");
                            *size = len as u64;
                        }
                        None => assert_eq!(
                            real,
                            Err(FfsError::UnknownFile(f)),
                            "seed {seed}: truncate of ghost {f}"
                        ),
                    }
                }
                Op::Delete(f) => {
                    let real = fs.delete(f);
                    if model.remove(&f).is_some() {
                        assert!(real.is_ok(), "seed {seed}: delete of {f} failed");
                    } else {
                        assert_eq!(
                            real,
                            Err(FfsError::UnknownFile(f)),
                            "seed {seed}: delete of ghost {f}"
                        );
                    }
                }
                Op::Flush => fs.flush_all(),
            }
            // Sizes agree at every step.
            for (&f, &size) in &model {
                assert_eq!(fs.size_of(f), Some(size), "seed {seed}: size of {f}");
            }
            assert_eq!(fs.file_count(), model.len(), "seed {seed}: file count");
        }
        // Flushing leaves no dirty blocks behind.
        fs.flush_all();
        assert_eq!(fs.cache().dirty_count(), 0, "seed {seed}: dirty blocks");
    }
}
