//! Round-trip differential: the compiled `.ops` file format is lossless.
//!
//! Every generator profile is compiled straight to disk through
//! `generate_into`, decoded back with `OpStreamFileReader`, and checked
//! two ways: the decoded records equal the in-memory `generate()` output
//! record for record, and a batched streaming replay of the decoded
//! stream produces a bit-identical report to the classic per-record
//! replay of the uncompiled trace. Together with the flash-image pin in
//! `equiv_flash.rs` this makes the compile → decode → batch pipeline an
//! equivalence-preserving transformation for all five workloads.

use ssmc::core::{MachineConfig, MobileComputer};
use ssmc::sim::stats::Histogram;
use ssmc::sim::SimDuration;
use ssmc::trace::{
    replay, replay_stream, GeneratorConfig, OpKind, OpStreamFileReader, OpStreamWriter,
    ReplayReport, Workload,
};

const OPS: usize = 6_000;

fn config(w: Workload) -> GeneratorConfig {
    GeneratorConfig::new(w)
        .with_ops(OPS)
        .with_max_live_bytes(4 << 20)
}

fn machine() -> MobileComputer {
    let mut cfg = MachineConfig::with_sizes("roundtrip", 8 << 20, 24 << 20);
    cfg.write_buffer_bytes = Some(1 << 20);
    MobileComputer::new(cfg)
}

/// Everything observable about a replay report, in comparable form.
fn report_fingerprint(r: &ReplayReport) -> Vec<(OpKind, u64, u64, u64, u64)> {
    r.per_op
        .iter()
        .map(|(&kind, h)| {
            (
                kind,
                h.count(),
                h.mean().to_bits(),
                h.quantile(0.5),
                h.quantile(0.99),
            )
        })
        .collect()
}

#[test]
fn all_five_generators_round_trip_through_the_ops_file() {
    let dir = std::env::temp_dir();
    for w in Workload::ALL {
        let trace = config(w).generate();

        // Compile the same seeded draw straight to disk.
        let path = dir.join(format!(
            "ssmc_roundtrip_{}_{}.ops",
            w.name(),
            std::process::id()
        ));
        let mut writer =
            OpStreamWriter::create(&path, w.name()).expect("create stream file");
        let written = config(w)
            .generate_into(&mut writer)
            .expect("compile stream");
        writer.finish().expect("finish stream");
        assert_eq!(written as usize, trace.records.len(), "{w}: record count");

        // Decode: the fixed-width records must match the in-memory trace
        // exactly — arrival times, file ids, offsets, lengths.
        let mut reader = OpStreamFileReader::open(&path).expect("open stream file");
        assert_eq!(reader.header().name, w.name(), "{w}: header name");
        assert_eq!(reader.header().records, written, "{w}: header count");
        let mut decoded = Vec::with_capacity(trace.records.len());
        while let Some(rec) = reader.next_record().expect("decode record") {
            decoded.push(rec);
        }
        assert_eq!(decoded, trace.records, "{w}: decoded records diverged");

        // Differential replay: batched streaming replay of the decoded
        // file vs classic per-record replay of the uncompiled trace.
        let mut m1 = machine();
        let clock1 = m1.clock().clone();
        let r1 = replay(&trace, &mut m1, &clock1);

        let mut m2 = machine();
        let clock2 = m2.clock().clone();
        let mut reader = OpStreamFileReader::open(&path).expect("reopen stream file");
        let (r2, stats) = replay_stream(
            std::iter::from_fn(|| reader.next_record().expect("decode record")),
            &mut m2,
            &clock2,
        );
        let _ = std::fs::remove_file(&path);

        assert_eq!(r2.ops, r1.ops, "{w}: op count");
        assert_eq!(r2.errors, r1.errors, "{w}: error count");
        assert_eq!(r2.elapsed, r1.elapsed, "{w}: simulated elapsed time");
        assert_eq!(
            report_fingerprint(&r2),
            report_fingerprint(&r1),
            "{w}: replay reports diverged"
        );
        assert_eq!(stats.batch_ops, r2.ops, "{w}: every op flows through a batch");
    }
}

/// `ReplayReport`'s percentile accessors are thin views over the shared
/// `ssmc_sim` histogram — the same quantile and merge logic every other
/// reporter uses. Cross-check them against direct histogram computation
/// on a real replay, so replay tables and observability dumps can never
/// disagree about the same data.
#[test]
fn replay_percentiles_match_the_shared_histogram_logic() {
    let trace = config(Workload::Office).generate();
    let mut m = machine();
    let clock = m.clock().clone();
    let report = replay(&trace, &mut m, &clock);

    for kind in OpKind::ALL {
        let expect = report
            .per_op
            .get(&kind)
            .map(|h| SimDuration::from_nanos(h.quantile(0.99)))
            .unwrap_or(SimDuration::ZERO);
        assert_eq!(report.p99_latency(kind), expect, "{kind}: p99 accessor");
    }

    let mut merged = Histogram::new();
    for kind in [OpKind::Read, OpKind::Write] {
        if let Some(h) = report.per_op.get(&kind) {
            merged.merge(h);
        }
    }
    assert!(merged.count() > 0, "office replay must record data ops");
    assert_eq!(
        report.mean_data_latency(),
        SimDuration::from_nanos(merged.mean() as u64),
        "mean data latency must equal the merged-histogram mean"
    );
}
