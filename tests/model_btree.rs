//! Randomized-model test: the memfs B-tree directory index against
//! `std::collections::BTreeMap`.
//!
//! Random insert/remove/get sequences over a small, collision-prone name
//! pool must produce identical return values, identical final contents,
//! and identical in-order iteration — while the tree's structural
//! invariants (key ordering, node fill, uniform leaf depth) hold after
//! every mutation.
//!
//! Cases are generated from fixed seeds by `SimRng`, so every run (and
//! every machine) exercises the identical sequences; a failure message
//! names the seed so the case can be replayed in isolation.

use ssmc::memfs::btree::BTreeIndex;
use ssmc::sim::SimRng;
use std::collections::BTreeMap;

/// Base seed for the deterministic case generator.
const SEED: u64 = 0xB7EE_1000;

#[derive(Debug, Clone)]
enum Op {
    Insert(String, u64),
    Remove(String),
    Get(String),
}

/// Short names over a six-letter alphabet: repeats are common, so the
/// same sequence exercises replacement, re-insertion after removal, and
/// arena-span reuse across many lengths.
fn random_name(rng: &mut SimRng) -> String {
    let len = 1 + rng.below(8) as usize;
    (0..len)
        .map(|_| (b'a' + rng.below(6) as u8) as char)
        .collect()
}

/// Weights: Insert 5, Remove 3, Get 3 (total 11).
fn random_op(rng: &mut SimRng) -> Op {
    match rng.below(11) {
        0..=4 => {
            let v = rng.below(1 << 32);
            Op::Insert(random_name(rng), v)
        }
        5..=7 => Op::Remove(random_name(rng)),
        _ => Op::Get(random_name(rng)),
    }
}

/// Drives one operation sequence against the model; panics (with `ctx`
/// naming the seed) on any divergence.
fn check_against_model(ops: &[Op], ctx: &str) {
    let mut real: BTreeIndex<u64> = BTreeIndex::new();
    let mut model: BTreeMap<String, u64> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Insert(name, v) => {
                assert_eq!(
                    real.insert(name, *v),
                    model.insert(name.clone(), *v),
                    "{ctx}: insert {name}"
                );
            }
            Op::Remove(name) => {
                assert_eq!(real.remove(name), model.remove(name), "{ctx}: remove {name}");
            }
            Op::Get(name) => {
                assert_eq!(
                    real.get(name),
                    model.get(name).copied(),
                    "{ctx}: get {name}"
                );
            }
        }
        real.check_invariants();
        assert_eq!(real.len(), model.len(), "{ctx}: length diverged");
    }

    // Final audit: in-order iteration yields exactly the model's pairs.
    let mut pairs: Vec<(String, u64)> = Vec::new();
    real.for_each(|k, v| pairs.push((k.to_owned(), v)));
    let expected: Vec<(String, u64)> = model.iter().map(|(k, &v)| (k.clone(), v)).collect();
    assert_eq!(pairs, expected, "{ctx}: iteration diverged");
}

#[test]
fn btree_matches_std_btreemap() {
    for case in 0..32u64 {
        let seed = SEED + case;
        let mut rng = SimRng::seed_from_u64(seed);
        let len = 1 + rng.below(299);
        let ops: Vec<Op> = (0..len).map(|_| random_op(&mut rng)).collect();
        check_against_model(&ops, &format!("seed {seed}"));
    }
}

/// Longer sequences push the tree to several levels, so removals cross
/// internal nodes (predecessor/successor promotion, child merges, root
/// collapse) rather than staying in the root leaf.
#[test]
fn btree_matches_std_btreemap_deep() {
    for case in 0..8u64 {
        let seed = SEED + 500 + case;
        let mut rng = SimRng::seed_from_u64(seed);
        let ops: Vec<Op> = (0..2_000).map(|_| random_op(&mut rng)).collect();
        check_against_model(&ops, &format!("seed {seed}"));
    }
}

/// Regression (distilled by hand from the randomized runs' failure
/// shapes): fill one leaf past the split point, then delete back through
/// the separator so the root collapses to a leaf again, then reuse the
/// freed names. Exercises split, merge, root collapse, and arena-span
/// reuse in one short deterministic sequence.
#[test]
fn btree_regression_split_then_collapse_and_reuse() {
    let mut ops: Vec<Op> = Vec::new();
    // 26 single-letter names: enough to split the root (max 15 per node).
    for c in b'a'..=b'z' {
        ops.push(Op::Insert((c as char).to_string(), c as u64));
    }
    // Delete every second name, including the promoted separator region.
    for c in (b'a'..=b'z').step_by(2) {
        ops.push(Op::Remove((c as char).to_string()));
    }
    // Re-insert into the freed spans with new values.
    for c in (b'a'..=b'z').step_by(2) {
        ops.push(Op::Insert((c as char).to_string(), 1_000 + c as u64));
    }
    // Then drain to empty, which must collapse the root cleanly.
    for c in b'a'..=b'z' {
        ops.push(Op::Remove((c as char).to_string()));
    }
    check_against_model(&ops, "regression");
}
