//! Property-based tests of the workload generators and the segment
//! table's crash-recovery scan.

use proptest::prelude::*;
use ssmc::sim::SimTime;
use ssmc::storage::segment::{SegState, SegmentTable, Slot, SlotMeta};
use ssmc::trace::{FileOp, GeneratorConfig, LifetimeModel, Workload};
use std::collections::{HashMap, HashSet};

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Bsd),
        Just(Workload::Office),
        Just(Workload::SoftwareDev),
        Just(Workload::Database),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any workload, seed, and lifetime skew: traces are time-ordered,
    /// reference only live files, never exceed the live-byte cap by more
    /// than one append, and are reproducible from the seed.
    #[test]
    fn generated_traces_are_well_formed(
        workload in workload_strategy(),
        seed in any::<u64>(),
        short_fraction in 0.0..1.0f64,
        ops in 200..2_000usize,
    ) {
        let cfg = GeneratorConfig::new(workload)
            .with_ops(ops)
            .with_seed(seed)
            .with_max_live_bytes(2 << 20)
            .with_lifetime(LifetimeModel::default().with_short_fraction(short_fraction));
        let trace = cfg.generate();
        prop_assert_eq!(trace.len(), ops);

        // Time-ordered.
        prop_assert!(trace.records.windows(2).all(|w| w[0].at <= w[1].at));

        // Ops reference only live files; sizes never go negative.
        let mut live: HashMap<u64, u64> = HashMap::new();
        for r in &trace.records {
            match &r.op {
                FileOp::Create { file } => {
                    prop_assert!(live.insert(*file, 0).is_none(), "double create");
                }
                FileOp::Delete { file } => {
                    prop_assert!(live.remove(file).is_some(), "delete of dead file");
                }
                FileOp::Write { file, offset, len } => {
                    let size = live.get_mut(file).expect("write to dead file");
                    *size = (*size).max(offset + len);
                }
                FileOp::Read { file, offset, len } => {
                    let size = live.get(file).expect("read of dead file");
                    // Reads target within (or at most at) the written size.
                    prop_assert!(offset + len <= size + 1, "read beyond file");
                }
                FileOp::Truncate { file, len } => {
                    let size = live.get_mut(file).expect("truncate of dead file");
                    *size = (*size).min(*len);
                }
                FileOp::Sync => {}
            }
        }

        // Reproducible.
        let again = cfg.generate();
        prop_assert_eq!(again.records, trace.records);
    }

    /// The segment table's recovery scan must pick, for every page, the
    /// record with the highest sequence — data slot wins means the page
    /// lives at that address; tombstone wins means it stays dead.
    #[test]
    fn segment_recovery_picks_highest_sequence(
        // (page, is_tombstone) events in sequence order.
        events in proptest::collection::vec((0..12u64, any::<bool>()), 1..60)
    ) {
        let mut table = SegmentTable::new(8, 8, 0, 4096, 512);
        let mut open: Option<usize> = None;
        let mut next_free = 0usize;
        // Model: latest (seq, is_tombstone) per page.
        let mut latest: HashMap<u64, (u64, bool)> = HashMap::new();
        let mut seq = 0u64;

        for (page, is_tomb) in events {
            seq += 1;
            // Ensure an open segment with room.
            let seg = match open {
                Some(s) if !table.seg(s).is_full() => s,
                maybe => {
                    if let Some(s) = maybe {
                        table.close(s);
                    }
                    if next_free >= table.len() {
                        break; // out of space for this case
                    }
                    let s = next_free;
                    next_free += 1;
                    table.open(s);
                    open = Some(s);
                    s
                }
            };
            if is_tomb {
                table.append_tomb(seg, vec![(page, seq)], SimTime::ZERO);
            } else {
                // A newer data copy makes the old one dead; the recovery
                // scan must reconstruct this without our help, so just
                // append (leaving stale Live slots is exactly the
                // post-crash state).
                table.append(seg, SlotMeta { page, seq }, SimTime::ZERO);
            }
            latest.insert(page, (seq, is_tomb));
        }

        let (live, max_seq) = table.recover_liveness();
        prop_assert_eq!(max_seq, seq);
        let expected_live: HashSet<u64> = latest
            .iter()
            .filter(|(_, (_, tomb))| !tomb)
            .map(|(p, _)| *p)
            .collect();
        let got_live: HashSet<u64> = live.keys().copied().collect();
        prop_assert_eq!(&got_live, &expected_live);

        // Liveness counters agree with the winner set, and each winner's
        // address holds a Live slot with the winning sequence.
        prop_assert_eq!(table.live_pages(), expected_live.len());
        for (page, addr) in live {
            let (seg, slot) = table.locate(addr);
            match &table.seg(seg).slots[slot] {
                Slot::Live(m) => {
                    prop_assert_eq!(m.page, page);
                    prop_assert_eq!(m.seq, latest[&page].0);
                }
                other => return Err(TestCaseError::fail(format!(
                    "winner slot is {other:?}, not Live"
                ))),
            }
        }
        // No free/retired segment contributes liveness.
        for s in 0..table.len() {
            if matches!(table.seg(s).state, SegState::Free) {
                prop_assert_eq!(table.seg(s).live, 0);
            }
        }
    }
}
