//! Randomized-model tests of the workload generators and the segment
//! table's crash-recovery scan, driven by fixed `SimRng` seeds so every
//! run exercises identical cases.

use ssmc::sim::{SimRng, SimTime};
use ssmc::storage::segment::{SegState, SegmentTable, Slot, SlotMeta};
use ssmc::trace::{FileOp, GeneratorConfig, LifetimeModel, Workload};
use std::collections::{HashMap, HashSet};

/// Base seed for the deterministic case generator.
const SEED: u64 = 0x7124_CE00;

const WORKLOADS: [Workload; 5] = [
    Workload::Bsd,
    Workload::Office,
    Workload::SoftwareDev,
    Workload::Database,
    Workload::MailSpool,
];

/// For any workload, seed, and lifetime skew: traces are time-ordered,
/// reference only live files, never exceed the live-byte cap by more
/// than one append, and are reproducible from the seed.
#[test]
fn generated_traces_are_well_formed() {
    for case in 0..24u64 {
        let case_seed = SEED + case;
        let mut rng = SimRng::seed_from_u64(case_seed);
        let workload = WORKLOADS[rng.below(WORKLOADS.len() as u64) as usize];
        let gen_seed = rng.next_u64();
        let short_fraction = rng.f64();
        let ops = 200 + rng.below(1_800) as usize;
        let ctx = format!("seed {case_seed} ({workload:?}, {ops} ops)");

        let cfg = GeneratorConfig::new(workload)
            .with_ops(ops)
            .with_seed(gen_seed)
            .with_max_live_bytes(2 << 20)
            .with_lifetime(LifetimeModel::default().with_short_fraction(short_fraction));
        let trace = cfg.generate();
        assert_eq!(trace.len(), ops, "{ctx}: length");

        // Time-ordered.
        assert!(
            trace.records.windows(2).all(|w| w[0].at <= w[1].at),
            "{ctx}: records out of time order"
        );

        // Ops reference only live files; sizes never go negative.
        let mut live: HashMap<u64, u64> = HashMap::new();
        for r in &trace.records {
            match &r.op {
                FileOp::Create { file } => {
                    assert!(live.insert(*file, 0).is_none(), "{ctx}: double create");
                }
                FileOp::Delete { file } => {
                    assert!(live.remove(file).is_some(), "{ctx}: delete of dead file");
                }
                FileOp::Write { file, offset, len } => {
                    let size = live.get_mut(file).expect("write to dead file");
                    *size = (*size).max(offset + len);
                }
                FileOp::Read { file, offset, len } => {
                    let size = live.get(file).expect("read of dead file");
                    // Reads target within (or at most at) the written size.
                    assert!(offset + len <= size + 1, "{ctx}: read beyond file");
                }
                FileOp::Truncate { file, len } => {
                    let size = live.get_mut(file).expect("truncate of dead file");
                    *size = (*size).min(*len);
                }
                FileOp::Stat { file } => {
                    assert!(live.contains_key(file), "{ctx}: stat of dead file");
                }
                FileOp::Rename { file, to } => {
                    let size = live.remove(file).expect("rename of dead file");
                    assert!(
                        live.insert(*to, size).is_none(),
                        "{ctx}: rename onto live id"
                    );
                }
                FileOp::Sync => {}
            }
        }

        // Reproducible.
        let again = cfg.generate();
        assert_eq!(again.records, trace.records, "{ctx}: not reproducible");
    }
}

/// The segment table's recovery scan must pick, for every page, the
/// record with the highest sequence — data slot wins means the page
/// lives at that address; tombstone wins means it stays dead.
#[test]
fn segment_recovery_picks_highest_sequence() {
    for case in 0..24u64 {
        let case_seed = SEED + 1_000 + case;
        let mut rng = SimRng::seed_from_u64(case_seed);
        // (page, is_tombstone) events in sequence order.
        let events: Vec<(u64, bool)> = (0..1 + rng.below(59))
            .map(|_| (rng.below(12), rng.chance(0.5)))
            .collect();
        let ctx = format!("seed {case_seed}");

        let mut table = SegmentTable::new(8, 8, 0, 4096, 512);
        let mut open: Option<usize> = None;
        let mut next_free = 0usize;
        // Model: latest (seq, is_tombstone) per page.
        let mut latest: HashMap<u64, (u64, bool)> = HashMap::new();
        let mut seq = 0u64;

        for (page, is_tomb) in events {
            seq += 1;
            // Ensure an open segment with room.
            let seg = match open {
                Some(s) if !table.seg(s).is_full() => s,
                maybe => {
                    if let Some(s) = maybe {
                        table.close(s);
                    }
                    if next_free >= table.len() {
                        break; // out of space for this case
                    }
                    let s = next_free;
                    next_free += 1;
                    table.open(s);
                    open = Some(s);
                    s
                }
            };
            if is_tomb {
                table.append_tomb(seg, vec![(page, seq)], SimTime::ZERO);
            } else {
                // A newer data copy makes the old one dead; the recovery
                // scan must reconstruct this without our help, so just
                // append (leaving stale Live slots is exactly the
                // post-crash state).
                table.append(seg, SlotMeta { page, seq, crc: 0 }, SimTime::ZERO);
            }
            latest.insert(page, (seq, is_tomb));
        }

        let (live, max_seq) = table.recover_liveness();
        assert_eq!(max_seq, seq, "{ctx}: max sequence");
        let expected_live: HashSet<u64> = latest
            .iter()
            .filter(|(_, (_, tomb))| !tomb)
            .map(|(p, _)| *p)
            .collect();
        let got_live: HashSet<u64> = live.keys().copied().collect();
        assert_eq!(got_live, expected_live, "{ctx}: live set");

        // Liveness counters agree with the winner set, and each winner's
        // address holds a Live slot with the winning sequence.
        assert_eq!(table.live_pages(), expected_live.len(), "{ctx}: live count");
        for (page, addr) in live {
            let (seg, slot) = table.locate(addr);
            match &table.seg(seg).slots[slot] {
                Slot::Live(m) => {
                    assert_eq!(m.page, page, "{ctx}: winner page");
                    assert_eq!(m.seq, latest[&page].0, "{ctx}: winner sequence");
                }
                other => panic!("{ctx}: winner slot is {other:?}, not Live"),
            }
        }
        // No free/retired segment contributes liveness.
        for s in 0..table.len() {
            if matches!(table.seg(s).state, SegState::Free) {
                assert_eq!(table.seg(s).live, 0, "{ctx}: free segment has liveness");
            }
        }
    }
}
