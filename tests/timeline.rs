//! Timeline flight-recorder guarantees the observability stack rests on:
//!
//! * every registry instrument the machine publishes has a same-named
//!   timeline channel, and the sealed final row equals the end-of-run
//!   registry values (the `.tl` is a faithful time-resolved superset of
//!   the end-of-run snapshot);
//! * fixed-seed timelines are byte-identical across repeats and across
//!   `--threads` settings (the sampler stamps SimTime only);
//! * `obs-diff` reports an empty diff when a run is compared against
//!   itself, and a non-empty one across genuinely different runs.

use ssmc::sim::obs::Instrument;
use ssmc::sim::timeline::{ChannelKind, Timeline};
use ssmc::sim::{set_threads, SimDuration};
use ssmc::trace::{GeneratorConfig, Workload};
use ssmc_bench::obs_diff::{diff, DiffInput, DiffOptions};
use ssmc_bench::obs_trace::{throughput_machine, timeline_replay, traced_replay, TRACE_SEED};
use std::path::PathBuf;

/// A per-test temp path that survives parallel test execution.
fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ssmc_tl_test_{}_{name}", std::process::id()))
}

/// Every instrument the machine's registry publishes must be sampled
/// into a same-named channel — except the lazily-populated per-component
/// `energy.*` ledger entries, which would change the channel count
/// mid-run and are represented by the per-device `energy.*_total_nj`
/// channels instead. Counters must agree exactly with the sealed final
/// row; kinds must map Counter→Counter and Gauge/TimeWeighted→Gauge.
#[test]
fn final_row_matches_end_of_run_registry() {
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(2_000)
        .with_seed(TRACE_SEED)
        .with_max_live_bytes(4 << 20)
        .generate();
    let path = tmp("coverage.tl");
    let mut m = throughput_machine();
    m.enable_timeline_file(&path, SimDuration::from_millis(50))
        .expect("enable timeline");
    let report = ssmc::core::run_trace(&mut m, &trace);
    assert_eq!(report.replay.errors, 0, "coverage replay must be clean");
    let registry = m.metrics_registry();
    // Sealing takes one final unconditional sample at the current clock,
    // the same instant the registry snapshot above was taken.
    let summary = m
        .finish_timeline()
        .expect("finish timeline")
        .expect("timeline stayed healthy");
    let tl = Timeline::read(&path).expect("read timeline back");
    let _ = std::fs::remove_file(&path);
    assert_eq!(summary.rows, tl.rows() as u64);
    assert_eq!(summary.channels as usize, tl.channels().len());
    assert!(tl.rows() > 10, "50 ms sampling must yield many rows");

    let last = tl.rows() - 1;
    for (name, instrument) in registry.iter() {
        if name.starts_with("energy.") {
            continue;
        }
        let ch = tl
            .channel_index(name)
            .unwrap_or_else(|| panic!("registry instrument {name} has no timeline channel"));
        let kind = tl.channels()[ch].kind;
        match instrument {
            Instrument::Counter(v) => {
                assert_eq!(kind, ChannelKind::Counter, "{name} kind");
                assert_eq!(
                    tl.value(last, ch),
                    *v,
                    "{name}: final row diverged from the registry"
                );
            }
            Instrument::Gauge(v) => {
                assert_eq!(kind, ChannelKind::Gauge, "{name} kind");
                let got = tl.gauge(last, ch);
                assert!(
                    got == *v || (got.is_nan() && v.is_nan()),
                    "{name}: final gauge {got} != registry {v}"
                );
            }
            Instrument::TimeWeighted(_) => {
                assert_eq!(kind, ChannelKind::Gauge, "{name} samples as a level gauge");
            }
            Instrument::Histogram(_) => {
                unreachable!("the machine registry publishes no histograms; {name} is new")
            }
        }
    }
    // The per-device energy totals stand in for the lazy ledger entries.
    for name in ["energy.flash_total_nj", "energy.dram_total_nj", "energy.vm_total_nj"] {
        assert!(tl.channel_index(name).is_some(), "{name} channel missing");
    }
    // Timeline-only channels the registry does not carry.
    for name in ["timeline.tick", "battery.remaining_j", "storage.free_segments"] {
        assert!(tl.channel_index(name).is_some(), "{name} channel missing");
    }
    assert!(
        tl.channels().iter().any(|c| c.name.starts_with("storage.segment_wear.")),
        "per-segment wear channels missing"
    );
}

/// Fixed-seed timelines must be byte-identical across repeats and across
/// worker-thread settings: the sampler fires on SimTime boundaries only,
/// so nothing host-dependent can reach the artifact.
#[test]
fn fixed_seed_timelines_are_byte_identical() {
    let run = |name: &str| {
        let path = tmp(name);
        timeline_replay(Workload::Bsd, 2_000, SimDuration::from_millis(50), &path)
            .expect("timeline replay");
        let bytes = std::fs::read(&path).expect("read timeline bytes");
        let _ = std::fs::remove_file(&path);
        bytes
    };
    let a = run("det_a.tl");
    let b = run("det_b.tl");
    assert!(!a.is_empty());
    assert_eq!(a, b, "two fixed-seed timelines diverged");

    set_threads(1);
    let seq = run("det_t1.tl");
    set_threads(4);
    let par = run("det_t4.tl");
    set_threads(0); // restore the host default
    assert_eq!(seq, par, "timeline bytes changed with the thread count");
    assert_eq!(a, seq, "timeline bytes drifted between phases");
}

/// Property: any run diffed against itself is clean, for timelines and
/// trace artifacts alike, across workloads and op counts — and a
/// cross-workload diff is not.
#[test]
fn obs_diff_self_compare_is_empty() {
    let opts = DiffOptions::default();
    let mut kept: Vec<DiffInput> = Vec::new();
    for workload in [Workload::Bsd, Workload::Office] {
        for ops in [500u64, 1_500] {
            let name = format!("self_{workload:?}_{ops}.tl").to_lowercase();
            let make = |tag: &str| {
                let path = tmp(&format!("{tag}_{name}"));
                timeline_replay(workload, ops, SimDuration::from_millis(100), &path)
                    .expect("timeline replay");
                let tl = Timeline::read(&path).expect("read timeline");
                let _ = std::fs::remove_file(&path);
                DiffInput::Timeline(tl)
            };
            let (a, b) = (make("a"), make("b"));
            let report = diff(&a, &b, &opts);
            assert!(
                report.is_clean(),
                "self-compare of {workload:?}/{ops} found drift:\n{}",
                report.render()
            );
            kept.push(a);
        }
    }
    // Different workloads at the same op count must not diff clean.
    let cross = diff(&kept[0], &kept[2], &opts);
    assert!(!cross.is_clean(), "bsd vs office timelines diffed clean");

    // The same property holds for trace artifacts.
    let a = DiffInput::Artifact(Box::new(traced_replay(Workload::Bsd, 1_000)));
    let b = DiffInput::Artifact(Box::new(traced_replay(Workload::Bsd, 1_000)));
    let report = diff(&a, &b, &opts);
    assert!(
        report.is_clean(),
        "artifact self-compare found drift:\n{}",
        report.render()
    );
    // And an artifact can be diffed against a timeline of the same run
    // shape without shape errors exploding (drift is expected — they
    // summarize different things — but shared metrics must align).
    let mixed = diff(&a, &kept[0], &opts);
    assert!(
        mixed.compared > 0,
        "artifact×timeline diff compared no shared metrics"
    );
}
