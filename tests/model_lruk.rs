//! Randomized-model test: the baseline's LRU-K replacer against a naive
//! reference that keeps every block's full access history and re-derives
//! the victim from the textbook definition on every eviction.
//!
//! The reference: a block with fewer than K recorded accesses has
//! infinite backward K-distance and is evicted before any block with K or
//! more, oldest first access first; among fully-seen blocks the victim is
//! the oldest K-th most recent access. All ties break by block number.
//!
//! Cases are generated from fixed seeds by `SimRng`, so every run (and
//! every machine) exercises the identical sequences; a failure message
//! names the seed so the case can be replayed in isolation.

use ssmc::baseline::LruKReplacer;
use ssmc::sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// Base seed for the deterministic case generator.
const SEED: u64 = 0x14BB_2000;
/// Block-number pool; small enough that re-access is common.
const BLOCKS: u64 = 12;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Access a block; when the flag is false the clock does not advance,
    /// forcing same-timestamp ties.
    Access(u64, bool),
    Evict,
    Remove(u64),
}

/// Weights: Access 6 (1 in 4 without a clock tick), Evict 3, Remove 1.
fn random_op(rng: &mut SimRng) -> Op {
    match rng.below(10) {
        0..=5 => Op::Access(rng.below(BLOCKS), rng.below(4) != 0),
        6..=8 => Op::Evict,
        _ => Op::Remove(rng.below(BLOCKS)),
    }
}

/// The naive reference: full histories, victim recomputed from scratch.
struct NaiveLruK {
    k: usize,
    /// Most recent access first.
    hist: BTreeMap<u64, Vec<SimTime>>,
}

impl NaiveLruK {
    fn record(&mut self, block: u64, now: SimTime) {
        self.hist.entry(block).or_default().insert(0, now);
    }

    fn victim(&self) -> Option<u64> {
        // Cold blocks (< k accesses): oldest first access, then block id.
        let cold = self
            .hist
            .iter()
            .filter(|(_, h)| h.len() < self.k)
            .map(|(&b, h)| (*h.last().expect("non-empty"), b))
            .min();
        if let Some((_, b)) = cold {
            return Some(b);
        }
        self.hist
            .iter()
            .map(|(&b, h)| (h[self.k - 1], b))
            .min()
            .map(|(_, b)| b)
    }

    fn evict(&mut self) -> Option<u64> {
        let v = self.victim()?;
        self.hist.remove(&v);
        Some(v)
    }
}

/// Drives one operation sequence against the reference; panics (with
/// `ctx` naming the seed) on any divergence.
fn check_against_model(k: u32, ops: &[Op], ctx: &str) {
    let mut real = LruKReplacer::new(k);
    let mut model = NaiveLruK {
        k: k as usize,
        hist: BTreeMap::new(),
    };
    let mut now = SimTime::ZERO;

    for op in ops {
        match *op {
            Op::Access(block, tick) => {
                if tick {
                    now += SimDuration::from_millis(1);
                }
                real.record_access(block, now);
                model.record(block, now);
            }
            Op::Evict => {
                assert_eq!(real.evict(), model.evict(), "{ctx}: victim diverged");
            }
            Op::Remove(block) => {
                real.remove(block);
                model.hist.remove(&block);
            }
        }
        assert_eq!(real.len(), model.hist.len(), "{ctx}: population diverged");
        for &b in model.hist.keys() {
            assert!(real.contains(b), "{ctx}: lost block {b}");
        }
    }

    // Final audit: full drain produces the same victim sequence.
    loop {
        let (a, b) = (real.evict(), model.evict());
        assert_eq!(a, b, "{ctx}: drain diverged");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn lru_k_matches_naive_history_scan() {
    for case in 0..32u64 {
        let seed = SEED + case;
        let mut rng = SimRng::seed_from_u64(seed);
        // Cover every supported depth, K = 1..=4.
        let k = 1 + (case % 4) as u32;
        let len = 1 + rng.below(199);
        let ops: Vec<Op> = (0..len).map(|_| random_op(&mut rng)).collect();
        check_against_model(k, &ops, &format!("seed {seed} k {k}"));
    }
}

/// Regression (distilled by hand from the randomized runs' failure
/// shapes): same-instant accesses to distinct blocks, one of which turns
/// warm mid-sequence, then an eviction. The victim must come from the
/// cold set by (first access, block), not from raw recency.
#[test]
fn lru_k_regression_same_instant_warm_promotion() {
    let ops = [
        Op::Access(3, false), // t0, cold
        Op::Access(1, false), // t0, cold — ties with 3 on time
        Op::Access(3, false), // t0 again: 3 turns warm at K=2
        Op::Evict,            // must evict 1 (cold) despite 3's older start
        Op::Access(2, true),  // t1, cold
        Op::Evict,            // must evict 2: cold beats warm
        Op::Evict,            // finally 3
    ];
    check_against_model(2, &ops, "regression");
}
