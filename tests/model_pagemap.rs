//! Randomized-model test: the dense [`PageMap`] against a hash-map model.
//!
//! The page map moved from a `HashMap` to a windowed dense table with a
//! sorted overflow map; this test drives random operation sequences over
//! structured page ids (file windows, slots past the dense bound, swap
//! range) and checks that the dense map stays exactly equivalent to the
//! obvious reference implementation:
//!
//! * `get` after every operation returns what the model holds;
//! * `len` / `flash_pages` match the model (the O(1) flash counter against
//!   a model scan);
//! * iteration visits exactly the model's entries, each id once;
//! * iteration order depends only on the final contents, never on the
//!   insertion order that produced them.
//!
//! Cases come from fixed `SimRng` seeds, so every run exercises identical
//! sequences; failures name the case so it can be replayed in isolation.

use ssmc::sim::SimRng;
use ssmc::storage::{Location, PageId, PageMap};
use std::collections::HashMap;

/// Base seed for the deterministic case generator.
const SEED: u64 = 0x90A7_113D;
const CASES: u64 = 48;
/// Small dense bound so slots routinely spill into the overflow map.
const DENSE_BOUND: u64 = 32;

#[derive(Debug, Clone, Copy)]
enum Op {
    Set(PageId, Location),
    Remove(PageId),
    Clear,
}

/// Structured ids like the real stack produces: `(ino << 32) | index`
/// file pages (some past the dense bound), plus occasional swap slots in
/// the far window.
fn random_page(rng: &mut SimRng) -> PageId {
    if rng.below(10) == 0 {
        0xFFFF_FFFF_0000_0000 + rng.below(16)
    } else {
        (rng.below(6) << 32) | rng.below(2 * DENSE_BOUND)
    }
}

fn random_loc(rng: &mut SimRng) -> Location {
    if rng.below(2) == 0 {
        Location::Dram(rng.below(64) as usize)
    } else {
        Location::Flash(rng.below(1 << 14) * 512)
    }
}

/// Weights: Set 8, Remove 3, Clear 1.
fn random_op(rng: &mut SimRng) -> Op {
    match rng.below(12) {
        0..=7 => Op::Set(random_page(rng), random_loc(rng)),
        8..=10 => Op::Remove(random_page(rng)),
        _ => Op::Clear,
    }
}

fn model_flash_pages(model: &HashMap<PageId, Location>) -> usize {
    model
        .values()
        .filter(|l| matches!(l, Location::Flash(_)))
        .count()
}

#[test]
fn page_map_matches_hash_map_model() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(SEED + case);
        let mut map = PageMap::with_dense_pages(DENSE_BOUND);
        let mut model: HashMap<PageId, Location> = HashMap::new();
        let len = 50 + rng.below(150);
        for step in 0..len {
            match random_op(&mut rng) {
                Op::Set(page, loc) => {
                    map.set(page, loc);
                    model.insert(page, loc);
                    assert_eq!(map.get(page), Some(loc), "case {case} step {step}");
                }
                Op::Remove(page) => {
                    let got = map.remove(page);
                    let want = model.remove(&page);
                    assert_eq!(got, want, "case {case} step {step} remove {page:#x}");
                }
                Op::Clear => {
                    map.clear();
                    model.clear();
                }
            }
            assert_eq!(map.len(), model.len(), "case {case} step {step}");
            assert_eq!(
                map.flash_pages(),
                model_flash_pages(&model),
                "case {case} step {step}: flash counter diverged"
            );
        }
        // Final deep comparison: iteration covers exactly the model.
        let mut got: Vec<(PageId, Location)> = map.iter().collect();
        got.sort_by_key(|&(p, _)| p);
        let mut want: Vec<(PageId, Location)> = model.iter().map(|(&p, &l)| (p, l)).collect();
        want.sort_by_key(|&(p, _)| p);
        assert_eq!(got, want, "case {case}: final contents diverged");
        // Probe ids the sequence may never have touched.
        for _ in 0..32 {
            let p = random_page(&mut rng);
            assert_eq!(map.get(p), model.get(&p).copied(), "case {case} probe {p:#x}");
        }
    }
}

#[test]
fn iteration_order_ignores_insertion_order() {
    for case in 0..8 {
        let mut rng = SimRng::seed_from_u64(SEED ^ (0xA5A5 + case));
        let mut entries: Vec<(PageId, Location)> = Vec::new();
        let mut seen = HashMap::new();
        while entries.len() < 40 {
            let p = random_page(&mut rng);
            if seen.insert(p, ()).is_none() {
                entries.push((p, random_loc(&mut rng)));
            }
        }
        let mut forward = PageMap::with_dense_pages(DENSE_BOUND);
        for &(p, l) in &entries {
            forward.set(p, l);
        }
        let mut backward = PageMap::with_dense_pages(DENSE_BOUND);
        for &(p, l) in entries.iter().rev() {
            backward.set(p, l);
        }
        let f: Vec<(PageId, Location)> = forward.iter().collect();
        let b: Vec<(PageId, Location)> = backward.iter().collect();
        assert_eq!(f, b, "case {case}: iteration order depends on history");
        assert_eq!(f.len(), entries.len());
    }
}
