//! Equivalence pin: the storage stack's flash image after a fixed replay.
//!
//! The dense hot-path rework (dense page map, slab write-buffer frames,
//! pooled page buffers) is required to be *behaviour-preserving*: it may
//! change how fast the simulator runs, never what it writes. This test
//! pins that down end to end: replay the canonical 25 k-operation BSD
//! trace through a full machine, sync, and hash the raw flash array. The
//! expected hash was recorded on the pre-rework (hash-map + per-op
//! allocation) implementation; any divergence in flush order, GC copy
//! choice, checkpoint layout, or buffer reuse shows up as a different
//! image.
//!
//! If this test fails after an *intentional* behaviour change, re-record
//! the constants by running with `--nocapture` and copying the printed
//! values — but that also invalidates `results/*.json`, so regenerate
//! those in the same change.

use ssmc::core::{run_trace, MachineConfig, MobileComputer};
use ssmc::trace::{
    replay, replay_stream, GeneratorConfig, OpKind, OpStream, ReplayReport, Workload,
};

/// FNV-1a hash of the whole flash address space after the replay + sync.
/// Re-recorded for the shadow-slot crash-consistency fix: stale durable
/// copies of dirty pages now stay Live until their replacement is
/// flushed, which changes GC victim choice and segment layout (but not
/// the page count — that is a user-write tally).
const GOLDEN_FLASH_FNV: u64 = 0x7b0c_1ed6_147f_a880;
/// Total pages programmed during the same run, recorded alongside the
/// hash as a cheaper first-line diagnostic.
const GOLDEN_PAGES_WRITTEN: u64 = 121_954;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn bsd_replay_produces_the_recorded_flash_image() {
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(25_000)
        .with_max_live_bytes(4 << 20)
        .generate();
    let mut cfg = MachineConfig::with_sizes("equiv", 8 << 20, 24 << 20);
    cfg.write_buffer_bytes = Some(1 << 20);
    let mut m = MobileComputer::new(cfg);
    run_trace(&mut m, &trace);
    m.fs().sync().expect("final sync");

    let pages_written = m.fs().storage().metrics().pages_written;
    let hash = fnv1a(m.fs().storage().flash().contents());
    println!("flash fnv1a = {hash:#018x}, pages written = {pages_written}");
    assert_eq!(
        pages_written, GOLDEN_PAGES_WRITTEN,
        "flash program count diverged from the recorded baseline"
    );
    assert_eq!(
        hash, GOLDEN_FLASH_FNV,
        "flash image diverged from the recorded baseline"
    );
}

/// Everything observable about a replay report, in comparable form.
/// Latencies are simulated time, so two equivalent replays must agree to
/// the bit — including float means.
fn report_fingerprint(r: &ReplayReport) -> Vec<(OpKind, u64, u64, u64, u64)> {
    let mut out = vec![];
    for (&kind, h) in &r.per_op {
        out.push((
            kind,
            h.count(),
            h.mean().to_bits(),
            h.quantile(0.5),
            h.quantile(0.99),
        ));
    }
    out
}

/// The batching stage is a host-side optimisation only: replaying the
/// compiled stream through `apply_batch` must leave the *same recorded
/// golden image* as the per-record path, and produce the identical
/// report.
#[test]
fn batched_stream_replay_produces_the_same_flash_image() {
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(25_000)
        .with_max_live_bytes(4 << 20)
        .generate();
    let cfg = || {
        let mut cfg = MachineConfig::with_sizes("equiv", 8 << 20, 24 << 20);
        cfg.write_buffer_bytes = Some(1 << 20);
        cfg
    };

    // Reference: per-record replay.
    let mut m1 = MobileComputer::new(cfg());
    let clock1 = m1.clock().clone();
    let r1 = replay(&trace, &mut m1, &clock1);
    m1.fs().sync().expect("reference sync");
    let pages1 = m1.fs().storage().metrics().pages_written;
    let hash1 = fnv1a(m1.fs().storage().flash().contents());

    // Batched: compile to a dense stream, replay through apply_batch.
    let stream = OpStream::compile(&trace);
    let mut m2 = MobileComputer::new(cfg());
    let clock2 = m2.clock().clone();
    let (r2, stats) = replay_stream(stream.cursor(), &mut m2, &clock2);
    m2.fs().sync().expect("batched sync");
    let pages2 = m2.fs().storage().metrics().pages_written;
    let hash2 = fnv1a(m2.fs().storage().flash().contents());

    assert_eq!(hash1, GOLDEN_FLASH_FNV, "reference image moved");
    assert_eq!(pages2, pages1, "batched path programmed a different count");
    assert_eq!(hash2, hash1, "batched path diverged from the unbatched image");
    assert_eq!(r2.ops, r1.ops);
    assert_eq!(r2.errors, r1.errors);
    assert_eq!(r2.elapsed, r1.elapsed);
    assert_eq!(report_fingerprint(&r2), report_fingerprint(&r1));
    assert!(
        stats.coalesced_ops > 0,
        "a BSD trace must coalesce some adjacent data ops"
    );
}
