//! Equivalence pin: the storage stack's flash image after a fixed replay.
//!
//! The dense hot-path rework (dense page map, slab write-buffer frames,
//! pooled page buffers) is required to be *behaviour-preserving*: it may
//! change how fast the simulator runs, never what it writes. This test
//! pins that down end to end: replay the canonical 25 k-operation BSD
//! trace through a full machine, sync, and hash the raw flash array. The
//! expected hash was recorded on the pre-rework (hash-map + per-op
//! allocation) implementation; any divergence in flush order, GC copy
//! choice, checkpoint layout, or buffer reuse shows up as a different
//! image.
//!
//! If this test fails after an *intentional* behaviour change, re-record
//! the constants by running with `--nocapture` and copying the printed
//! values — but that also invalidates `results/*.json`, so regenerate
//! those in the same change.

use ssmc::core::{run_trace, MachineConfig, MobileComputer};
use ssmc::trace::{GeneratorConfig, Workload};

/// FNV-1a hash of the whole flash address space after the replay + sync,
/// recorded on the seed implementation.
const GOLDEN_FLASH_FNV: u64 = 0xc574_63a0_a9cd_2d19;
/// Total pages programmed during the same run, recorded alongside the
/// hash as a cheaper first-line diagnostic.
const GOLDEN_PAGES_WRITTEN: u64 = 121_954;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn bsd_replay_produces_the_recorded_flash_image() {
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(25_000)
        .with_max_live_bytes(4 << 20)
        .generate();
    let mut cfg = MachineConfig::with_sizes("equiv", 8 << 20, 24 << 20);
    cfg.write_buffer_bytes = Some(1 << 20);
    let mut m = MobileComputer::new(cfg);
    run_trace(&mut m, &trace);
    m.fs().sync().expect("final sync");

    let pages_written = m.fs().storage().metrics().pages_written;
    let hash = fnv1a(m.fs().storage().flash().contents());
    println!("flash fnv1a = {hash:#018x}, pages written = {pages_written}");
    assert_eq!(
        pages_written, GOLDEN_PAGES_WRITTEN,
        "flash program count diverged from the recorded baseline"
    );
    assert_eq!(
        hash, GOLDEN_FLASH_FNV,
        "flash image diverged from the recorded baseline"
    );
}
