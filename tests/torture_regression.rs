//! Seed-pinned cut-index regressions from the crash-torture sweep.
//!
//! The full sweep (`experiments crash-torture`, BSD trace, seed
//! `0x0C0F_FEE5`, 2 k trace ops) found 129 failing cuts in two windows,
//! both rooted in the same design flaw: a dirty rewrite eagerly killed
//! the page's stale-but-durable flash slot, so a segment whose pages
//! were all rewritten-but-unflushed looked fully dead and GC's
//! free-lunch path erased it. A power cut before the next flush then
//! either resurrected an older durable generation (cuts 7736–7762) or
//! lost synced pages outright (cuts 7961–7998). These tests pin one
//! representative cut per window through the real `run_cut` path; both
//! fail on the pre-fix (eager-kill) code and pass with the shadow-slot
//! shield in `StorageManager`.

use ssmc::device::{FlashSpec, TearMode};
use ssmc::sim::SimDuration;
use ssmc::storage::torture::{self, TortureOp};
use ssmc::storage::StorageConfig;
use ssmc::trace::{project, GeneratorConfig, OracleConfig, PageOpKind, Workload};

const SEED: u64 = 0x0C0F_FEE5;

/// The exact configuration the bench subcommand sweeps (see
/// `crash_torture` in `crates/bench/src/bin/experiments.rs`): small
/// enough that a 2 k-op window exercises GC and checkpointing.
fn sweep_cfg() -> StorageConfig {
    StorageConfig {
        page_size: 512,
        dram_buffer_bytes: 16 << 10,
        flash: FlashSpec {
            banks: 4,
            blocks_per_bank: 16,
            block_bytes: 8 << 10,
            write_unit: 512,
            ..FlashSpec::default()
        },
        gc_trigger_segments: 4,
        gc_target_segments: 6,
        checkpoint_interval: SimDuration::from_secs(1),
        ..StorageConfig::default()
    }
}

/// The exact op stream the bench subcommand sweeps.
fn sweep_ops() -> Vec<TortureOp> {
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(2_000)
        .with_seed(SEED)
        .with_max_live_bytes(128 << 10)
        .generate();
    project(&trace, &OracleConfig::default())
        .iter()
        .map(|o| match o.kind {
            PageOpKind::Write => TortureOp::Write { page: o.page },
            PageOpKind::Free => TortureOp::Free { page: o.page },
            PageOpKind::Sync => TortureOp::Sync,
            PageOpKind::Tick => TortureOp::Tick,
        })
        .collect()
}

fn assert_cut_passes(cut: u64, tear: TearMode) {
    let r = torture::run_cut(&sweep_cfg(), &sweep_ops(), SEED, cut, tear);
    assert!(
        r.passed(),
        "{tear:?} cut {cut} regressed: {:?}",
        r.violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    );
}

/// Window A: page 6601's newest durable generation lived in a segment
/// GC erased while the page sat dirty in the buffer; recovery then
/// crowned the superseded older generation — a resurrection.
#[test]
fn cut_7740_no_stale_generation_resurrected() {
    assert_cut_passes(7740, TearMode::Prefix);
    assert_cut_passes(7740, TearMode::Stripe);
}

/// Window B: pages 6692–6698 were synced, rewritten dirty, and their
/// only durable copies erased with their segment; the cut lost them
/// entirely.
#[test]
fn cut_7970_no_synced_data_lost() {
    assert_cut_passes(7970, TearMode::Prefix);
    assert_cut_passes(7970, TearMode::Stripe);
}
