//! End-to-end integration tests spanning the whole stack: devices,
//! storage manager, file system, VM, machine assembly, and both
//! organisations on shared workloads.

use ssmc::baseline::BaselineConfig;
use ssmc::core::{run_trace, DiskComputer, MachineConfig, MobileComputer};
use ssmc::device::BatterySpec;
use ssmc::memfs::OpenMode;
use ssmc::sim::SimDuration;
use ssmc::trace::{replay, GeneratorConfig, OpKind, Workload};

#[test]
fn full_machine_lifecycle() {
    let mut m = MobileComputer::new(MachineConfig::small_notebook());

    // A directory tree with real data.
    m.fs().mkdir("/home").expect("mkdir");
    m.fs().mkdir("/home/docs").expect("mkdir");
    let fd = m.fs().create("/home/docs/report.txt").expect("create");
    let body: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    m.fs().write(fd, 0, &body).expect("write");

    // A program executed in place.
    let app = m.fs().create("/home/app").expect("create");
    m.fs()
        .write(app, 0, &vec![0xC3u8; 128 * 1024])
        .expect("install");
    m.fs_sync().expect("sync");
    let launch = m.launch_app("/home/app", true).expect("xip");
    assert_eq!(launch.dram_pages, 0);
    m.run_app(&launch, 128 * 1024, 200).expect("run");

    // A day of work.
    let trace = GeneratorConfig::new(Workload::Office)
        .with_ops(4_000)
        .with_max_live_bytes(2 << 20)
        .generate();
    let report = run_trace(&mut m, &trace);
    assert_eq!(report.replay.errors, 0);

    // Crash and come back.
    m.fs_sync().expect("sync");
    m.battery_failure();
    let (rec, fsck) = m.replace_battery_and_recover().expect("recover");
    assert_eq!(rec.lost_pages, 0, "everything was synced");
    assert!(!fsck.root_rebuilt);

    // The report survived intact, byte for byte.
    let fd = m
        .fs()
        .open("/home/docs/report.txt", OpenMode::Read)
        .expect("open");
    let mut buf = vec![0u8; 10_000];
    let n = m.fs().read(fd, 0, &mut buf).expect("read");
    assert_eq!(n, 10_000);
    assert_eq!(buf, body);
}

#[test]
fn both_organisations_run_the_same_workload() {
    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(6_000)
        .with_max_live_bytes(3 << 20)
        .generate();

    let mut solid = MobileComputer::new(MachineConfig::small_notebook());
    let clock = solid.clock().clone();
    let solid_report = replay(&trace, &mut solid, &clock);

    let mut disk = DiskComputer::new(BaselineConfig::default(), BatterySpec::default());
    let clock = disk.clock().clone();
    let disk_report = replay(&trace, &mut disk, &clock);

    assert_eq!(solid_report.errors, 0, "solid-state replay clean");
    assert_eq!(disk_report.errors, 0, "disk replay clean");

    // The paper's core performance claim: writes buffered in DRAM beat
    // writes behind a mechanical arm.
    let solid_w = solid_report.mean_latency(OpKind::Write);
    let disk_w = disk_report.mean_latency(OpKind::Write);
    assert!(
        solid_w * 3 < disk_w,
        "solid write {solid_w} vs disk write {disk_w}"
    );
    // And the energy claim.
    let solid_j = solid.total_energy().as_joules();
    let disk_j = disk.total_energy().as_joules();
    assert!(
        solid_j * 3.0 < disk_j,
        "solid {solid_j} J vs disk {disk_j} J"
    );
}

#[test]
fn sustained_churn_exercises_gc_without_data_loss() {
    // Rewrite a working set far larger than flash many times over: the
    // log wraps repeatedly, GC cleans, wear stays even, and every read
    // still returns the latest data.
    let mut m = MobileComputer::new(MachineConfig::with_sizes("churn", 2 << 20, 4 << 20));
    let clock = m.clock().clone();
    let fd = m.fs().create("/state").expect("create");
    let mut payload = vec![0u8; 64 * 1024];
    for round in 0..150u8 {
        payload.fill(round);
        m.fs().write(fd, 0, &payload).expect("write");
        m.fs_sync().expect("sync");
        clock.advance(SimDuration::from_secs(2));
        m.fs().tick().expect("tick");
    }
    let wear = m.fs().storage().flash().wear_stats();
    assert!(wear.total_erases > 50, "log must have wrapped");
    assert_eq!(wear.bad_blocks, 0);
    let mut buf = vec![0u8; 64 * 1024];
    m.fs().read(fd, 0, &mut buf).expect("read");
    assert!(buf.iter().all(|&b| b == 149), "latest round visible");
}

#[test]
fn repeated_crashes_never_corrupt_the_namespace() {
    let mut m = MobileComputer::new(MachineConfig::small_notebook());
    for round in 0..5u32 {
        let trace = GeneratorConfig::new(Workload::SoftwareDev)
            .with_ops(1_500)
            .with_max_live_bytes(1 << 20)
            .with_seed(round as u64)
            .generate();
        let clock = m.clock().clone();
        let _ = replay(&trace, &mut m, &clock);
        m.battery_failure();
        let (_, fsck) = m.replace_battery_and_recover().expect("recover");
        assert!(!fsck.root_rebuilt, "round {round}");
        // Whatever fsck kept must fully resolve.
        for e in m.fs().list_dir("/").expect("list") {
            m.fs().stat(&format!("/{}", e.name)).expect("resolves");
        }
    }
}

#[test]
fn experiment_registry_is_complete_and_unique() {
    let exps = ssmc_bench::experiments();
    assert_eq!(exps.len(), 14, "T1-T3, F1-F8, and ablations A1-A3");
    let mut ids: Vec<&str> = exps.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 14, "ids must be unique");
    for required in [
        "t1", "t2", "t3", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "a1", "a2", "a3",
    ] {
        assert!(ids.contains(&required), "missing {required}");
    }
}

#[test]
fn fast_experiments_produce_tables() {
    // T1 and F1 are pure model computations; run them end to end.
    for e in ssmc_bench::experiments() {
        if e.id == "t1" || e.id == "f1" {
            let tables = (e.run)();
            assert!(!tables.is_empty(), "{} returned no tables", e.id);
            for t in tables {
                assert!(!t.rows.is_empty(), "{} has an empty table", e.id);
                let rendered = t.render();
                assert!(rendered.contains("=="), "{} renders a title", e.id);
            }
        }
    }
}
