//! Determinism guarantees the whole experiment suite rests on:
//!
//! * a fixed-seed trace replay produces a bit-identical `RunReport` on
//!   every run;
//! * a parallel sweep produces the same results regardless of the worker
//!   thread count (results are keyed by input index, not completion
//!   order);
//! * the report encoder reproduces the checked-in `results/*.json`
//!   byte-for-byte, so regenerated artifacts diff cleanly.

use ssmc::core::{sweep_sizing, MachineConfig, MobileComputer, SizingSpec};
use ssmc::sim::report::{FromReport, ToReport, Value};
use ssmc::sim::{set_threads, Table};
use ssmc::trace::{GeneratorConfig, Workload};

fn bsd_trace() -> ssmc::trace::Trace {
    GeneratorConfig::new(Workload::Bsd)
        .with_ops(3_000)
        .with_seed(1993)
        .with_max_live_bytes(2 << 20)
        .generate()
}

/// Replaying the same fixed-seed trace on two fresh machines must yield
/// bit-identical reports (the simulation has no hidden nondeterminism).
#[test]
fn fixed_seed_replay_is_reproducible() {
    let trace = bsd_trace();
    let run = || {
        let mut m = MobileComputer::new(MachineConfig::small_notebook());
        format!("{:?}", ssmc::core::run_trace(&mut m, &trace))
    };
    assert_eq!(run(), run(), "two replays of the same trace diverged");
}

/// The sizing sweep (and by extension every `parallel_sweep` user) must
/// produce identical output whether it runs on one worker or many. The
/// thread cap is process-global, so the whole comparison lives in one
/// test.
#[test]
fn sweep_results_do_not_depend_on_thread_count() {
    let trace = bsd_trace();
    let spec = SizingSpec {
        dram_fractions: vec![0.2, 0.4, 0.6],
        ..SizingSpec::default()
    };
    let encode = |spec: &SizingSpec| sweep_sizing(spec, &trace).to_report().encode();

    set_threads(1);
    let sequential = encode(&spec);
    set_threads(8);
    let parallel = encode(&spec);
    set_threads(0); // restore the host default
    assert_eq!(
        sequential, parallel,
        "sweep output changed with the thread count"
    );
}

/// The checked-in `results/f2.json` (originally written by serde_json)
/// must decode through the report layer into tables and re-encode to the
/// identical bytes — field names, ordering, and float formatting all
/// preserved.
#[test]
fn report_encoder_reproduces_checked_in_f2_results() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/f2.json");
    let text = std::fs::read_to_string(path).expect("read results/f2.json");
    let value = Value::decode(&text).expect("decode results/f2.json");
    let tables = Vec::<Table>::from_report(&value).expect("tables from report");
    assert_eq!(tables.len(), 2, "f2 emits the F2a sweep and F2b sensitivity");
    assert!(tables[0].title.starts_with("F2a:"), "title {}", tables[0].title);
    assert_eq!(tables[0].headers[0], "buffer (KB)");
    assert!(tables[1].title.starts_with("F2b:"), "title {}", tables[1].title);
    assert!(!tables[0].rows.is_empty() && !tables[1].rows.is_empty());

    let reencoded = tables.to_report().encode_pretty();
    assert_eq!(
        reencoded,
        text.trim_end(),
        "re-encoded f2.json diverged from the checked-in bytes"
    );
}

/// The observability golden: a traced fixed-seed 25k-op BSD replay must
/// serialize its journal and registry to byte-identical JSON on every
/// run — and regardless of the worker thread count, since the traced
/// replay is single-threaded and stamps only simulated time.
#[test]
fn traced_replay_journal_is_byte_identical() {
    use ssmc_bench::obs_trace::traced_replay;
    use ssmc::trace::Workload;

    let encode = || {
        let artifact = traced_replay(Workload::Bsd, 25_000);
        (
            artifact.journal.to_report().encode(),
            artifact.registry.to_report().encode(),
        )
    };
    let (journal_a, registry_a) = encode();
    let (journal_b, registry_b) = encode();
    assert_eq!(journal_a, journal_b, "journal bytes diverged across runs");
    assert_eq!(registry_a, registry_b, "registry bytes diverged across runs");

    set_threads(1);
    let (journal_seq, registry_seq) = encode();
    set_threads(8);
    let (journal_par, registry_par) = encode();
    set_threads(0); // restore the host default
    assert_eq!(
        journal_seq, journal_par,
        "journal bytes changed with the thread count"
    );
    assert_eq!(
        registry_seq, registry_par,
        "registry bytes changed with the thread count"
    );
    assert_eq!(journal_a, journal_seq, "journal bytes drifted between phases");

    // The artifact is non-trivial: root spans for every op, plus nested
    // spans from at least the fs, storage, and device layers.
    let artifact = traced_replay(Workload::Bsd, 25_000);
    assert_eq!(artifact.journal.ops, 25_000);
    for layer in [
        ssmc::sim::obs::Layer::Machine,
        ssmc::sim::obs::Layer::MemFs,
        ssmc::sim::obs::Layer::Storage,
        ssmc::sim::obs::Layer::Device,
    ] {
        let (count, ..) = artifact.journal.layer_totals(layer);
        assert!(count > 0, "no spans recorded for layer {}", layer.name());
    }
    assert!(!artifact.registry.is_empty(), "registry must not be empty");
}
