//! Million-entry namespace scale tests for the B-tree directory index.
//!
//! Ignored by default — CI runs them explicitly in release mode
//! (`cargo test --release -- --ignored`), because a debug-build million-file
//! create loop is pointlessly slow.
//!
//! What they pin down:
//! * a single directory holds 1 000 000 live entries and every lookup
//!   stays O(log n) — asserted directly from the index's depth counter,
//!   not from timing;
//! * steady-state churn (unlink + re-create) keeps the index's memory
//!   footprint exactly flat: freed name spans and tree nodes are reused,
//!   never leaked;
//! * a 10-level-deep tree resolves, lists, and unlinks correctly.

use ssmc::device::FlashSpec;
use ssmc::memfs::{FsError, MemFs, WritePolicy};
use ssmc::sim::Clock;
use ssmc::storage::{StorageConfig, StorageManager};

const MILLION: usize = 1_000_000;

/// A storage stack big enough for a million-file namespace: 512 MB of
/// flash (the namespace itself is ~100 MB of inode and dirent pages, so
/// utilization stays low and GC stays cheap).
fn big_fs() -> MemFs {
    let clock = Clock::shared();
    let cfg = StorageConfig {
        page_size: 4096,
        dram_buffer_bytes: 4 << 20,
        flash: FlashSpec {
            banks: 8,
            blocks_per_bank: 256,
            block_bytes: 256 * 1024,
            write_unit: 4096,
            ..FlashSpec::default()
        },
        ..StorageConfig::default()
    };
    MemFs::new(StorageManager::new(cfg, clock), WritePolicy::CopyOnWrite).expect("mount")
}

fn name(i: usize) -> String {
    format!("/spool/m{i}")
}

#[test]
#[ignore = "million-entry scale run; CI invokes it in release mode"]
fn million_entry_directory_stays_logarithmic_and_flat() {
    let mut fs = big_fs();
    fs.mkdir("/spool").expect("mkdir");

    for i in 0..MILLION {
        let fd = fs.create(&name(i)).expect("create");
        fs.close(fd).expect("close");
        if i % 200_000 == 199_999 {
            fs.sync().expect("sync");
        }
    }
    fs.sync().expect("sync");

    // O(log n) lookups, asserted structurally: with minimum fanout 8,
    // a million entries fit in depth ≤ log_8(1e6) + slack. Depth ≥ 4
    // proves the tree actually grew (nobody swapped in a flat list).
    let (depth, splits) = fs.dindex_stats();
    assert!(
        (4..=8).contains(&depth),
        "depth {depth} out of the logarithmic envelope for 1e6 entries"
    );
    assert!(splits > MILLION as u64 / 16, "suspiciously few splits: {splits}");

    // Point lookups across the keyspace.
    for i in [0, 1, MILLION / 2, MILLION - 2, MILLION - 1] {
        let st = fs.stat(&name(i)).expect("stat");
        assert_eq!(st.size, 0, "fresh file {i} has size 0");
    }
    assert!(matches!(
        fs.stat("/spool/never-created").unwrap_err(),
        FsError::NotFound
    ));

    // Steady-state churn must not grow the index: unlink a window,
    // re-create the same names, and the arena/slab footprint is byte-
    // and node-identical round over round.
    const WINDOW: usize = 50_000;
    let mut footprints = Vec::new();
    for round in 0..3 {
        for i in 0..WINDOW {
            fs.unlink(&name(i)).expect("unlink");
        }
        for i in 0..WINDOW {
            let fd = fs.create(&name(i)).expect("re-create");
            fs.close(fd).expect("close");
        }
        footprints.push(fs.dindex_footprint());
        assert_eq!(
            footprints[0], footprints[round],
            "index footprint grew under churn (round {round}): {footprints:?}"
        );
    }

    // Unlink round-trip: gone means gone, and the name is reusable.
    fs.unlink(&name(7)).expect("unlink");
    assert!(matches!(fs.stat(&name(7)).unwrap_err(), FsError::NotFound));
    let fd = fs.create(&name(7)).expect("create after unlink");
    fs.close(fd).expect("close");
    fs.sync().expect("final sync");
}

#[test]
#[ignore = "scale companion; CI invokes it in release mode"]
fn ten_level_deep_tree_resolves_and_unlinks() {
    let mut fs = big_fs();

    // /d0/d1/.../d9, with a fanout of files at the bottom.
    let mut dir = String::new();
    for level in 0..10 {
        dir.push_str(&format!("/d{level}"));
        fs.mkdir(&dir).expect("mkdir");
    }
    for i in 0..1_000 {
        let fd = fs.create(&format!("{dir}/leaf{i}")).expect("create");
        fs.close(fd).expect("close");
    }
    fs.sync().expect("sync");

    assert_eq!(fs.list_dir(&dir).expect("list").len(), 1_000);
    for i in [0, 499, 999] {
        fs.stat(&format!("{dir}/leaf{i}")).expect("stat deep leaf");
    }
    // Intermediate levels hold exactly one subdirectory each.
    assert_eq!(fs.list_dir("/d0").expect("list").len(), 1);

    for i in 0..1_000 {
        fs.unlink(&format!("{dir}/leaf{i}")).expect("unlink");
    }
    assert!(fs.list_dir(&dir).expect("list").is_empty());
    // Tear the tree down from the bottom up.
    for level in (0..10).rev() {
        fs.rmdir(&dir).expect("rmdir");
        let cut = dir.rfind('/').expect("component");
        dir.truncate(cut);
        let _ = level;
    }
    let fsck = fs.fsck().expect("fsck");
    assert_eq!(fsck.dangling_entries, 0);
}
