//! Property-based test: the storage manager against a trivial model.
//!
//! The model is a `HashMap<PageId, Vec<u8>>` plus a record of what was
//! synced. Invariants checked under random operation sequences:
//!
//! * read-your-writes: a read always returns the latest written data;
//! * free-then-read yields zeros (holes);
//! * after a crash, recovery restores the latest *durable* version of
//!   every page (explicit syncs and background ticks both flush), never
//!   fabricated data, and never loses an explicitly synced page;
//! * capacity accounting never lets live pages exceed the advertised
//!   capacity.

use proptest::prelude::*;
use ssmc::device::FlashSpec;
use ssmc::sim::{Clock, SimDuration};
use ssmc::storage::{StorageConfig, StorageManager};
use std::collections::HashMap;

const PAGE: usize = 512;
/// Keep the page universe small so overwrites and frees actually collide.
const UNIVERSE: u64 = 48;

#[derive(Debug, Clone)]
enum Op {
    Write(u64, u8),
    Read(u64),
    Free(u64),
    Sync,
    Tick(u64),
    CrashRecover,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..UNIVERSE, any::<u8>()).prop_map(|(p, b)| Op::Write(p, b)),
        3 => (0..UNIVERSE).prop_map(Op::Read),
        1 => (0..UNIVERSE).prop_map(Op::Free),
        1 => Just(Op::Sync),
        1 => (1..120u64).prop_map(Op::Tick),
        1 => Just(Op::CrashRecover),
    ]
}

fn manager() -> (StorageManager, ssmc::sim::SharedClock) {
    let clock = Clock::shared();
    let cfg = StorageConfig {
        page_size: PAGE as u64,
        dram_buffer_bytes: 8 * PAGE as u64,
        flash: FlashSpec {
            banks: 2,
            blocks_per_bank: 10,
            block_bytes: 4096,
            write_unit: 512,
            ..FlashSpec::default()
        },
        gc_trigger_segments: 2,
        gc_target_segments: 3,
        ..StorageConfig::default()
    };
    (StorageManager::new(cfg, clock.clone()), clock)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn storage_manager_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let (mut sm, clock) = manager();
        // Model: current contents, last-synced contents, and every value
        // ever written per page (ticks may flush intermediate versions,
        // so recovery may restore any historically written value).
        let mut current: HashMap<u64, u8> = HashMap::new();
        let mut synced: HashMap<u64, u8> = HashMap::new();
        let mut history: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut buf = vec![0u8; PAGE];

        for op in ops {
            match op {
                Op::Write(p, b) => {
                    match sm.write_page(p, &vec![b; PAGE]) {
                        Ok(()) => {
                            current.insert(p, b);
                            history.entry(p).or_default().push(b);
                        }
                        Err(ssmc::storage::StorageError::NoSpace) => {
                            // Model must agree capacity was the issue.
                            prop_assert!(
                                !current.contains_key(&p),
                                "NoSpace rewriting an existing page"
                            );
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("write: {e}"))),
                    }
                }
                Op::Read(p) => {
                    sm.read_page(p, &mut buf).expect("read");
                    match current.get(&p) {
                        Some(&b) => prop_assert!(
                            buf.iter().all(|&x| x == b),
                            "page {p} expected {b}, got {}", buf[0]
                        ),
                        None => prop_assert!(
                            buf.iter().all(|&x| x == 0),
                            "hole {p} must read zeros"
                        ),
                    }
                }
                Op::Free(p) => {
                    sm.free_page(p).expect("free");
                    current.remove(&p);
                }
                Op::Sync => {
                    sm.sync().expect("sync");
                    synced = current.clone();
                }
                Op::Tick(secs) => {
                    clock.advance(SimDuration::from_secs(secs));
                    sm.tick().expect("tick");
                    // Ticks may flush buffered pages; anything that
                    // reached flash is as good as synced, but we cannot
                    // see which — conservatively leave `synced` alone
                    // (recovery may restore MORE than `synced`, checked
                    // below as a superset property only for deletes).
                }
                Op::CrashRecover => {
                    sm.crash();
                    sm.recover().expect("recover");
                    // Recovery restores the latest *durable* version of
                    // each page. Explicit syncs and background ticks both
                    // flush, so the recovered value may be any version
                    // ever written — but never garbage, and synced pages
                    // must exist.
                    for &p in synced.keys() {
                        if current.contains_key(&p) {
                            prop_assert!(sm.contains(p), "synced page {p} lost");
                            sm.read_page(p, &mut buf).expect("read");
                            prop_assert!(buf.iter().all(|&x| x == buf[0]));
                            let known = history.get(&p).cloned().unwrap_or_default();
                            prop_assert!(
                                known.contains(&buf[0]),
                                "page {p}: recovered {} was never written",
                                buf[0]
                            );
                        }
                    }
                    // Reset the model to what the device now reports.
                    let mut rebuilt: HashMap<u64, u8> = HashMap::new();
                    for p in 0..UNIVERSE {
                        if sm.contains(p) {
                            sm.read_page(p, &mut buf).expect("read");
                            rebuilt.insert(p, buf[0]);
                        }
                    }
                    current = rebuilt.clone();
                    synced = rebuilt;
                }
            }
            // Global invariant: live pages within capacity.
            prop_assert!(sm.pages_live() <= sm.page_capacity() + 1);
        }
    }

    #[test]
    fn synced_state_always_survives_crash(
        writes in proptest::collection::vec((0..UNIVERSE, any::<u8>()), 1..40),
        extra in proptest::collection::vec((0..UNIVERSE, any::<u8>()), 0..20),
    ) {
        let (mut sm, _clock) = manager();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (p, b) in writes {
            if sm.write_page(p, &vec![b; PAGE]).is_ok() {
                model.insert(p, b);
            }
        }
        sm.sync().expect("sync");
        // Unsynced extra writes may revert.
        for (p, b) in extra {
            let _ = sm.write_page(p, &vec![b; PAGE]);
        }
        sm.crash();
        sm.recover().expect("recover");
        let mut buf = vec![0u8; PAGE];
        for (p, b) in model {
            prop_assert!(sm.contains(p), "synced page {p} lost");
            sm.read_page(p, &mut buf).expect("read");
            // Either the synced value or a newer flushed one; since the
            // extra writes used the same universe, accept any uniform
            // non-hole value.
            prop_assert!(buf.iter().all(|&x| x == buf[0]));
            let _ = b;
        }
    }

    #[test]
    fn wear_accounting_is_consistent(
        rounds in 1..12u64,
    ) {
        let (mut sm, clock) = manager();
        let data = vec![3u8; PAGE];
        for r in 0..rounds * 30 {
            sm.write_page(r % 20, &data).expect("write");
            if r % 10 == 0 {
                sm.sync().expect("sync");
                clock.advance(SimDuration::from_secs(1));
                sm.tick().expect("tick");
            }
        }
        let stats = sm.flash().wear_stats();
        prop_assert_eq!(stats.total_erases, sm.flash().counters().erases);
        prop_assert!(stats.max_erases >= stats.min_erases);
        prop_assert!(stats.evenness() >= 0.0 && stats.evenness() <= 1.0);
    }
}
