//! Randomized-model test: the storage manager against a trivial model.
//!
//! The model is a `HashMap<PageId, Vec<u8>>` plus a record of what was
//! synced. Invariants checked under random operation sequences:
//!
//! * read-your-writes: a read always returns the latest written data;
//! * free-then-read yields zeros (holes);
//! * after a crash, recovery restores the latest *durable* version of
//!   every page (explicit syncs and background ticks both flush), never
//!   fabricated data, and never loses an explicitly synced page;
//! * capacity accounting never lets live pages exceed the advertised
//!   capacity.
//!
//! Cases are generated from fixed seeds by `SimRng`, so every run (and
//! every machine) exercises the identical sequences; a failure message
//! names the seed so the case can be replayed in isolation.

use ssmc::device::FlashSpec;
use ssmc::sim::{Clock, SimDuration, SimRng};
use ssmc::storage::{StorageConfig, StorageManager};
use std::collections::HashMap;

const PAGE: usize = 512;
/// Keep the page universe small so overwrites and frees actually collide.
const UNIVERSE: u64 = 48;
/// Base seed for the deterministic case generator.
const SEED: u64 = 0x5704_6A6E;

#[derive(Debug, Clone)]
enum Op {
    Write(u64, u8),
    Read(u64),
    Free(u64),
    Sync,
    Tick(u64),
    CrashRecover,
}

/// Mirrors the old proptest weights: Write 4, Read 3, Free/Sync/Tick/
/// CrashRecover 1 each (total 11).
fn random_op(rng: &mut SimRng) -> Op {
    match rng.below(11) {
        0..=3 => Op::Write(rng.below(UNIVERSE), rng.below(256) as u8),
        4..=6 => Op::Read(rng.below(UNIVERSE)),
        7 => Op::Free(rng.below(UNIVERSE)),
        8 => Op::Sync,
        9 => Op::Tick(1 + rng.below(119)),
        _ => Op::CrashRecover,
    }
}

fn random_ops(rng: &mut SimRng, min: u64, max: u64) -> Vec<Op> {
    let len = min + rng.below(max - min);
    (0..len).map(|_| random_op(rng)).collect()
}

fn manager() -> (StorageManager, ssmc::sim::SharedClock) {
    let clock = Clock::shared();
    let cfg = StorageConfig {
        page_size: PAGE as u64,
        dram_buffer_bytes: 8 * PAGE as u64,
        flash: FlashSpec {
            banks: 2,
            blocks_per_bank: 10,
            block_bytes: 4096,
            write_unit: 512,
            ..FlashSpec::default()
        },
        gc_trigger_segments: 2,
        gc_target_segments: 3,
        ..StorageConfig::default()
    };
    (StorageManager::new(cfg, clock.clone()), clock)
}

/// Drives one operation sequence against the model; panics (with `ctx`
/// naming the seed) on any divergence.
fn check_against_model(ops: &[Op], ctx: &str) {
    let (mut sm, clock) = manager();
    // Model: current contents, last-synced contents, and every value
    // ever written per page (ticks may flush intermediate versions,
    // so recovery may restore any historically written value).
    let mut current: HashMap<u64, u8> = HashMap::new();
    let mut synced: HashMap<u64, u8> = HashMap::new();
    let mut history: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut buf = vec![0u8; PAGE];

    for op in ops {
        match *op {
            Op::Write(p, b) => match sm.write_page(p, &vec![b; PAGE]) {
                Ok(()) => {
                    current.insert(p, b);
                    history.entry(p).or_default().push(b);
                }
                Err(ssmc::storage::StorageError::NoSpace) => {
                    // Model must agree capacity was the issue.
                    assert!(
                        !current.contains_key(&p),
                        "{ctx}: NoSpace rewriting an existing page"
                    );
                }
                Err(e) => panic!("{ctx}: write: {e}"),
            },
            Op::Read(p) => {
                sm.read_page(p, &mut buf).expect("read");
                match current.get(&p) {
                    Some(&b) => assert!(
                        buf.iter().all(|&x| x == b),
                        "{ctx}: page {p} expected {b}, got {}",
                        buf[0]
                    ),
                    None => assert!(
                        buf.iter().all(|&x| x == 0),
                        "{ctx}: hole {p} must read zeros"
                    ),
                }
            }
            Op::Free(p) => {
                sm.free_page(p).expect("free");
                current.remove(&p);
            }
            Op::Sync => {
                sm.sync().expect("sync");
                synced = current.clone();
            }
            Op::Tick(secs) => {
                clock.advance(SimDuration::from_secs(secs));
                sm.tick().expect("tick");
                // Ticks may flush buffered pages; anything that
                // reached flash is as good as synced, but we cannot
                // see which — conservatively leave `synced` alone
                // (recovery may restore MORE than `synced`, checked
                // below as a superset property only for deletes).
            }
            Op::CrashRecover => {
                sm.crash();
                sm.recover().expect("recover");
                // Recovery restores the latest *durable* version of
                // each page. Explicit syncs and background ticks both
                // flush, so the recovered value may be any version
                // ever written — but never garbage, and synced pages
                // must exist.
                for &p in synced.keys() {
                    if current.contains_key(&p) {
                        assert!(sm.contains(p), "{ctx}: synced page {p} lost");
                        sm.read_page(p, &mut buf).expect("read");
                        assert!(buf.iter().all(|&x| x == buf[0]));
                        let known = history.get(&p).cloned().unwrap_or_default();
                        assert!(
                            known.contains(&buf[0]),
                            "{ctx}: page {p}: recovered {} was never written",
                            buf[0]
                        );
                    }
                }
                // Reset the model to what the device now reports.
                let mut rebuilt: HashMap<u64, u8> = HashMap::new();
                for p in 0..UNIVERSE {
                    if sm.contains(p) {
                        sm.read_page(p, &mut buf).expect("read");
                        rebuilt.insert(p, buf[0]);
                    }
                }
                current = rebuilt.clone();
                synced = rebuilt;
            }
        }
        // Global invariant: live pages within capacity.
        assert!(
            sm.pages_live() <= sm.page_capacity() + 1,
            "{ctx}: live pages exceed capacity"
        );
    }
}

#[test]
fn storage_manager_matches_model() {
    for case in 0..48u64 {
        let seed = SEED + case;
        let mut rng = SimRng::seed_from_u64(seed);
        let ops = random_ops(&mut rng, 1, 120);
        check_against_model(&ops, &format!("seed {seed}"));
    }
}

/// Regression distilled by the old proptest shrinker: a page written,
/// synced, rewritten, tick-flushed, rewritten again and then crashed must
/// recover to one of its historically written values.
#[test]
fn storage_regression_synced_page_survives_tick_flush() {
    let ops = [
        Op::Write(23, 0),
        Op::Sync,
        Op::Write(23, 1),
        Op::Tick(30),
        Op::Write(23, 2),
        Op::CrashRecover,
    ];
    check_against_model(&ops, "regression");
}

#[test]
fn synced_state_always_survives_crash() {
    for case in 0..48u64 {
        let seed = SEED + 1_000 + case;
        let mut rng = SimRng::seed_from_u64(seed);
        let writes: Vec<(u64, u8)> = (0..1 + rng.below(39))
            .map(|_| (rng.below(UNIVERSE), rng.below(256) as u8))
            .collect();
        let extra: Vec<(u64, u8)> = (0..rng.below(20))
            .map(|_| (rng.below(UNIVERSE), rng.below(256) as u8))
            .collect();

        let (mut sm, _clock) = manager();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for &(p, b) in &writes {
            if sm.write_page(p, &vec![b; PAGE]).is_ok() {
                model.insert(p, b);
            }
        }
        sm.sync().expect("sync");
        // Unsynced extra writes may revert.
        for &(p, b) in &extra {
            let _ = sm.write_page(p, &vec![b; PAGE]);
        }
        sm.crash();
        sm.recover().expect("recover");
        let mut buf = vec![0u8; PAGE];
        for (p, _b) in model {
            assert!(sm.contains(p), "seed {seed}: synced page {p} lost");
            sm.read_page(p, &mut buf).expect("read");
            // Either the synced value or a newer flushed one; since the
            // extra writes used the same universe, accept any uniform
            // non-hole value.
            assert!(
                buf.iter().all(|&x| x == buf[0]),
                "seed {seed}: page {p} not uniform"
            );
        }
    }
}

#[test]
fn wear_accounting_is_consistent() {
    for rounds in 1..12u64 {
        let (mut sm, clock) = manager();
        let data = vec![3u8; PAGE];
        for r in 0..rounds * 30 {
            sm.write_page(r % 20, &data).expect("write");
            if r % 10 == 0 {
                sm.sync().expect("sync");
                clock.advance(SimDuration::from_secs(1));
                sm.tick().expect("tick");
            }
        }
        let stats = sm.flash().wear_stats();
        assert_eq!(stats.total_erases, sm.flash().counters().erases);
        assert!(stats.max_erases >= stats.min_erases);
        assert!(stats.evenness() >= 0.0 && stats.evenness() <= 1.0);
    }
}
