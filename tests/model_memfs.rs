//! Property-based test: the memory-resident file system against an
//! in-memory model (`HashMap<name, Vec<u8>>`).
//!
//! Random sequences of create/write/read/truncate/rename/delete must
//! produce byte-identical results in the real FS and the model, across
//! odd offsets, page-straddling extents, holes, and name reuse.

use proptest::prelude::*;
use ssmc::device::FlashSpec;
use ssmc::memfs::{FsError, MemFs, OpenMode, WritePolicy};
use ssmc::sim::Clock;
use ssmc::storage::{StorageConfig, StorageManager};
use std::collections::HashMap;

const NAMES: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

#[derive(Debug, Clone)]
enum Op {
    Create(usize),
    Write(usize, u16, u16, u8),
    Read(usize, u16, u16),
    Truncate(usize, u16),
    Delete(usize),
    Rename(usize, usize),
    Sync,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let name = 0..NAMES.len();
    prop_oneof![
        2 => name.clone().prop_map(Op::Create),
        4 => (name.clone(), 0..6000u16, 1..3000u16, any::<u8>())
            .prop_map(|(n, o, l, b)| Op::Write(n, o, l, b)),
        3 => (name.clone(), 0..8000u16, 1..4000u16).prop_map(|(n, o, l)| Op::Read(n, o, l)),
        1 => (name.clone(), 0..6000u16).prop_map(|(n, l)| Op::Truncate(n, l)),
        1 => name.clone().prop_map(Op::Delete),
        1 => (name.clone(), name).prop_map(|(a, b)| Op::Rename(a, b)),
        1 => Just(Op::Sync),
    ]
}

fn fs() -> MemFs {
    let clock = Clock::shared();
    let cfg = StorageConfig {
        page_size: 512,
        dram_buffer_bytes: 32 * 512,
        flash: FlashSpec {
            banks: 2,
            blocks_per_bank: 40,
            block_bytes: 8192,
            write_unit: 512,
            ..FlashSpec::default()
        },
        ..StorageConfig::default()
    };
    MemFs::new(StorageManager::new(cfg, clock), WritePolicy::CopyOnWrite).expect("mount")
}

fn path(i: usize) -> String {
    format!("/{}", NAMES[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn memfs_matches_in_memory_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut fs = fs();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::Create(n) => {
                    let p = path(n);
                    let real = fs.create(&p);
                    match model.entry(p.clone()) {
                        std::collections::hash_map::Entry::Occupied(_) => {
                            prop_assert_eq!(real.err(), Some(FsError::Exists));
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            prop_assert!(real.is_ok(), "create {} failed", p);
                            fs.close(real.expect("checked")).expect("close");
                            v.insert(Vec::new());
                        }
                    }
                }
                Op::Write(n, off, len, byte) => {
                    let p = path(n);
                    let data = vec![byte; len as usize];
                    match fs.open(&p, OpenMode::Write) {
                        Ok(fd) => {
                            prop_assert!(model.contains_key(&p), "opened ghost {}", p);
                            fs.write(fd, off as u64, &data).expect("write");
                            fs.close(fd).expect("close");
                            let file = model.get_mut(&p).expect("exists");
                            let end = off as usize + len as usize;
                            if file.len() < end {
                                file.resize(end, 0);
                            }
                            file[off as usize..end].copy_from_slice(&data);
                        }
                        Err(FsError::NotFound) => {
                            prop_assert!(!model.contains_key(&p));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("open: {e}"))),
                    }
                }
                Op::Read(n, off, len) => {
                    let p = path(n);
                    match fs.open(&p, OpenMode::Read) {
                        Ok(fd) => {
                            let mut buf = vec![0xEEu8; len as usize];
                            let got = fs.read(fd, off as u64, &mut buf).expect("read");
                            fs.close(fd).expect("close");
                            let file = &model[&p];
                            let expected: &[u8] = if (off as usize) < file.len() {
                                &file[off as usize..(off as usize + len as usize).min(file.len())]
                            } else {
                                &[]
                            };
                            prop_assert_eq!(got, expected.len(), "short-read length for {}", p);
                            prop_assert_eq!(&buf[..got], expected, "content of {}", p);
                        }
                        Err(FsError::NotFound) => {
                            prop_assert!(!model.contains_key(&p));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("open: {e}"))),
                    }
                }
                Op::Truncate(n, len) => {
                    let p = path(n);
                    match fs.open(&p, OpenMode::Write) {
                        Ok(fd) => {
                            fs.ftruncate(fd, len as u64).expect("truncate");
                            fs.close(fd).expect("close");
                            let file = model.get_mut(&p).expect("exists");
                            file.resize(len as usize, 0);
                        }
                        Err(FsError::NotFound) => {
                            prop_assert!(!model.contains_key(&p));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("open: {e}"))),
                    }
                }
                Op::Delete(n) => {
                    let p = path(n);
                    let real = fs.unlink(&p);
                    if model.remove(&p).is_some() {
                        prop_assert!(real.is_ok(), "unlink {} failed: {:?}", p, real.err());
                    } else {
                        prop_assert_eq!(real.err(), Some(FsError::NotFound));
                    }
                }
                Op::Rename(a, b) => {
                    let (pa, pb) = (path(a), path(b));
                    let real = fs.rename(&pa, &pb);
                    match (model.contains_key(&pa), model.contains_key(&pb), a == b) {
                        (true, true, _) => prop_assert_eq!(real.err(), Some(FsError::Exists)),
                        (true, false, _) => {
                            prop_assert!(real.is_ok(), "rename failed: {:?}", real.err());
                            let v = model.remove(&pa).expect("exists");
                            model.insert(pb, v);
                        }
                        (false, _, _) => prop_assert_eq!(real.err(), Some(FsError::NotFound)),
                    }
                }
                Op::Sync => fs.sync().expect("sync"),
            }
        }

        // Final audit: directory listing matches the model's name set, and
        // every file's full contents match.
        let mut listed: Vec<String> = fs
            .list_dir("/")
            .expect("list")
            .into_iter()
            .map(|e| e.name)
            .collect();
        listed.sort();
        let mut expected: Vec<String> = model.keys().map(|p| p[1..].to_owned()).collect();
        expected.sort();
        prop_assert_eq!(listed, expected);
        for (p, contents) in &model {
            let st = fs.stat(p).expect("stat");
            prop_assert_eq!(st.size, contents.len() as u64, "size of {}", p);
            let fd = fs.open(p, OpenMode::Read).expect("open");
            let mut buf = vec![0u8; contents.len()];
            let n = fs.read(fd, 0, &mut buf).expect("read");
            prop_assert_eq!(n, contents.len());
            prop_assert_eq!(&buf, contents, "final contents of {}", p);
        }
    }

    #[test]
    fn sync_crash_recover_preserves_synced_files(
        files in proptest::collection::hash_map(0..NAMES.len(), (1..4000u16, any::<u8>()), 1..5)
    ) {
        let mut fs = fs();
        for (&n, &(len, byte)) in &files {
            let fd = fs.create(&path(n)).expect("create");
            fs.write(fd, 0, &vec![byte; len as usize]).expect("write");
            fs.close(fd).expect("close");
        }
        fs.sync().expect("sync");
        fs.crash();
        let (report, fsck) = fs.recover().expect("recover");
        prop_assert_eq!(report.lost_pages, 0);
        prop_assert_eq!(fsck.dangling_entries, 0);
        for (&n, &(len, byte)) in &files {
            let fd = fs.open(&path(n), OpenMode::Read).expect("reopen");
            let mut buf = vec![0u8; len as usize];
            let got = fs.read(fd, 0, &mut buf).expect("read");
            prop_assert_eq!(got, len as usize);
            prop_assert!(buf.iter().all(|&x| x == byte));
            fs.close(fd).expect("close");
        }
    }
}
