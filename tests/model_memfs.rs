//! Randomized-model test: the memory-resident file system against an
//! in-memory model (`HashMap<name, Vec<u8>>`).
//!
//! Random sequences of create/write/read/truncate/rename/delete must
//! produce byte-identical results in the real FS and the model, across
//! odd offsets, page-straddling extents, holes, and name reuse.
//!
//! Cases are generated from fixed seeds by `SimRng`, so every run (and
//! every machine) exercises the identical sequences; a failure message
//! names the seed so the case can be replayed in isolation.

use ssmc::device::FlashSpec;
use ssmc::memfs::{FsError, MemFs, OpenMode, WritePolicy};
use ssmc::sim::{Clock, SimRng};
use ssmc::storage::{StorageConfig, StorageManager};
use std::collections::HashMap;

const NAMES: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
/// Base seed for the deterministic case generator.
const SEED: u64 = 0x3E3F_5000;

#[derive(Debug, Clone)]
enum Op {
    Create(usize),
    Write(usize, u16, u16, u8),
    Read(usize, u16, u16),
    Truncate(usize, u16),
    Delete(usize),
    Rename(usize, usize),
    Sync,
}

/// Mirrors the old proptest weights: Create 2, Write 4, Read 3,
/// Truncate/Delete/Rename/Sync 1 each (total 13).
fn random_op(rng: &mut SimRng) -> Op {
    let name = |rng: &mut SimRng| rng.below(NAMES.len() as u64) as usize;
    match rng.below(13) {
        0..=1 => Op::Create(name(rng)),
        2..=5 => Op::Write(
            name(rng),
            rng.below(6000) as u16,
            1 + rng.below(2999) as u16,
            rng.below(256) as u8,
        ),
        6..=8 => Op::Read(name(rng), rng.below(8000) as u16, 1 + rng.below(3999) as u16),
        9 => Op::Truncate(name(rng), rng.below(6000) as u16),
        10 => Op::Delete(name(rng)),
        11 => Op::Rename(name(rng), name(rng)),
        _ => Op::Sync,
    }
}

fn fs() -> MemFs {
    let clock = Clock::shared();
    let cfg = StorageConfig {
        page_size: 512,
        dram_buffer_bytes: 32 * 512,
        flash: FlashSpec {
            banks: 2,
            blocks_per_bank: 40,
            block_bytes: 8192,
            write_unit: 512,
            ..FlashSpec::default()
        },
        ..StorageConfig::default()
    };
    MemFs::new(StorageManager::new(cfg, clock), WritePolicy::CopyOnWrite).expect("mount")
}

fn path(i: usize) -> String {
    format!("/{}", NAMES[i])
}

/// Drives one operation sequence against the model; panics (with `ctx`
/// naming the seed) on any divergence.
fn check_against_model(ops: &[Op], ctx: &str) {
    let mut fs = fs();
    let mut model: HashMap<String, Vec<u8>> = HashMap::new();

    for op in ops {
        match *op {
            Op::Create(n) => {
                let p = path(n);
                let real = fs.create(&p);
                match model.entry(p.clone()) {
                    std::collections::hash_map::Entry::Occupied(_) => {
                        assert_eq!(real.err(), Some(FsError::Exists), "{ctx}: double create {p}");
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        assert!(real.is_ok(), "{ctx}: create {p} failed");
                        fs.close(real.expect("checked")).expect("close");
                        v.insert(Vec::new());
                    }
                }
            }
            Op::Write(n, off, len, byte) => {
                let p = path(n);
                let data = vec![byte; len as usize];
                match fs.open(&p, OpenMode::Write) {
                    Ok(fd) => {
                        assert!(model.contains_key(&p), "{ctx}: opened ghost {p}");
                        fs.write(fd, off as u64, &data).expect("write");
                        fs.close(fd).expect("close");
                        let file = model.get_mut(&p).expect("exists");
                        let end = off as usize + len as usize;
                        if file.len() < end {
                            file.resize(end, 0);
                        }
                        file[off as usize..end].copy_from_slice(&data);
                    }
                    Err(FsError::NotFound) => {
                        assert!(!model.contains_key(&p), "{ctx}: {p} should exist");
                    }
                    Err(e) => panic!("{ctx}: open: {e}"),
                }
            }
            Op::Read(n, off, len) => {
                let p = path(n);
                match fs.open(&p, OpenMode::Read) {
                    Ok(fd) => {
                        let mut buf = vec![0xEEu8; len as usize];
                        let got = fs.read(fd, off as u64, &mut buf).expect("read");
                        fs.close(fd).expect("close");
                        let file = &model[&p];
                        let expected: &[u8] = if (off as usize) < file.len() {
                            &file[off as usize..(off as usize + len as usize).min(file.len())]
                        } else {
                            &[]
                        };
                        assert_eq!(got, expected.len(), "{ctx}: short-read length for {p}");
                        assert_eq!(&buf[..got], expected, "{ctx}: content of {p}");
                    }
                    Err(FsError::NotFound) => {
                        assert!(!model.contains_key(&p), "{ctx}: {p} should exist");
                    }
                    Err(e) => panic!("{ctx}: open: {e}"),
                }
            }
            Op::Truncate(n, len) => {
                let p = path(n);
                match fs.open(&p, OpenMode::Write) {
                    Ok(fd) => {
                        fs.ftruncate(fd, len as u64).expect("truncate");
                        fs.close(fd).expect("close");
                        let file = model.get_mut(&p).expect("exists");
                        file.resize(len as usize, 0);
                    }
                    Err(FsError::NotFound) => {
                        assert!(!model.contains_key(&p), "{ctx}: {p} should exist");
                    }
                    Err(e) => panic!("{ctx}: open: {e}"),
                }
            }
            Op::Delete(n) => {
                let p = path(n);
                let real = fs.unlink(&p);
                if model.remove(&p).is_some() {
                    assert!(real.is_ok(), "{ctx}: unlink {p} failed: {:?}", real.err());
                } else {
                    assert_eq!(real.err(), Some(FsError::NotFound), "{ctx}: unlink ghost {p}");
                }
            }
            Op::Rename(a, b) => {
                let (pa, pb) = (path(a), path(b));
                let real = fs.rename(&pa, &pb);
                match (model.contains_key(&pa), model.contains_key(&pb), a == b) {
                    (true, true, _) => {
                        assert_eq!(real.err(), Some(FsError::Exists), "{ctx}: rename onto {pb}")
                    }
                    (true, false, _) => {
                        assert!(real.is_ok(), "{ctx}: rename failed: {:?}", real.err());
                        let v = model.remove(&pa).expect("exists");
                        model.insert(pb, v);
                    }
                    (false, _, _) => {
                        assert_eq!(real.err(), Some(FsError::NotFound), "{ctx}: rename ghost {pa}")
                    }
                }
            }
            Op::Sync => fs.sync().expect("sync"),
        }
    }

    // Final audit: directory listing matches the model's name set, and
    // every file's full contents match.
    let mut listed: Vec<String> = fs
        .list_dir("/")
        .expect("list")
        .into_iter()
        .map(|e| e.name)
        .collect();
    listed.sort();
    let mut expected: Vec<String> = model.keys().map(|p| p[1..].to_owned()).collect();
    expected.sort();
    assert_eq!(listed, expected, "{ctx}: directory listing diverged");
    for (p, contents) in &model {
        let st = fs.stat(p).expect("stat");
        assert_eq!(st.size, contents.len() as u64, "{ctx}: size of {p}");
        let fd = fs.open(p, OpenMode::Read).expect("open");
        let mut buf = vec![0u8; contents.len()];
        let n = fs.read(fd, 0, &mut buf).expect("read");
        assert_eq!(n, contents.len(), "{ctx}: full read of {p}");
        assert_eq!(&buf, contents, "{ctx}: final contents of {p}");
    }
}

#[test]
fn memfs_matches_in_memory_model() {
    for case in 0..32u64 {
        let seed = SEED + case;
        let mut rng = SimRng::seed_from_u64(seed);
        let len = 1 + rng.below(59);
        let ops: Vec<Op> = (0..len).map(|_| random_op(&mut rng)).collect();
        check_against_model(&ops, &format!("seed {seed}"));
    }
}

/// Regression distilled by the old proptest shrinker: a write that grows
/// the file, a shrinking truncate, then a one-byte write just past the
/// truncated end must leave exactly the model's bytes (zero-filled hole,
/// not stale pre-truncate data).
#[test]
fn memfs_regression_write_after_shrinking_truncate() {
    let ops = [
        Op::Create(0),
        Op::Write(0, 1714, 2969, 1),
        Op::Truncate(0, 1537),
        Op::Write(0, 1715, 1, 0),
    ];
    check_against_model(&ops, "regression");
}

#[test]
fn sync_crash_recover_preserves_synced_files() {
    for case in 0..32u64 {
        let seed = SEED + 1_000 + case;
        let mut rng = SimRng::seed_from_u64(seed);
        // 1..5 distinct files, each with a random length and fill byte.
        let mut files: HashMap<usize, (u16, u8)> = HashMap::new();
        let count = 1 + rng.below(4);
        while (files.len() as u64) < count {
            let n = rng.below(NAMES.len() as u64) as usize;
            let len = 1 + rng.below(3999) as u16;
            let byte = rng.below(256) as u8;
            files.entry(n).or_insert((len, byte));
        }

        let mut fs = fs();
        for (&n, &(len, byte)) in &files {
            let fd = fs.create(&path(n)).expect("create");
            fs.write(fd, 0, &vec![byte; len as usize]).expect("write");
            fs.close(fd).expect("close");
        }
        fs.sync().expect("sync");
        fs.crash();
        let (report, fsck) = fs.recover().expect("recover");
        assert_eq!(report.lost_pages, 0, "seed {seed}: lost pages");
        assert_eq!(fsck.dangling_entries, 0, "seed {seed}: dangling entries");
        for (&n, &(len, byte)) in &files {
            let fd = fs.open(&path(n), OpenMode::Read).expect("reopen");
            let mut buf = vec![0u8; len as usize];
            let got = fs.read(fd, 0, &mut buf).expect("read");
            assert_eq!(got, len as usize, "seed {seed}: short read");
            assert!(
                buf.iter().all(|&x| x == byte),
                "seed {seed}: contents of {} diverged",
                path(n)
            );
            fs.close(fd).expect("close");
        }
    }
}
