//! Randomized-model tests of core data structures against trivial models:
//! the VM page table vs a `HashMap`, the flash device's erase/program
//! protocol, and the statistics toolkit's numeric invariants. Cases are
//! generated from fixed `SimRng` seeds so every run exercises identical
//! sequences.

use ssmc::device::{BlockId, DeviceError, Flash, FlashSpec};
use ssmc::sim::{Clock, Histogram, OnlineStats, SimRng};
use ssmc::vm::{Backing, PageTable, Pte};
use std::collections::HashMap;

/// Base seed for the deterministic case generator.
const SEED: u64 = 0x9A6E_7AB1;

fn pte(tag: u64) -> Pte {
    Pte {
        writable: tag.is_multiple_of(2),
        cow: tag.is_multiple_of(3),
        dirty: false,
        backing: Backing::Frame(tag),
    }
}

#[derive(Debug, Clone)]
enum TableOp {
    Map(u64, u64),
    Unmap(u64),
    Get(u64),
}

/// Mirrors the old proptest weights: Map 3, Unmap 1, Get 2 (total 6),
/// with a mix of nearby and far-flung VPNs to exercise all radix levels.
fn random_table_op(rng: &mut SimRng) -> TableOp {
    let vpn = |rng: &mut SimRng| {
        if rng.chance(0.5) {
            rng.below(64)
        } else {
            rng.below(1 << 50) | 1 << 40
        }
    };
    match rng.below(6) {
        0..=2 => TableOp::Map(vpn(rng), rng.next_u64()),
        3 => TableOp::Unmap(vpn(rng)),
        _ => TableOp::Get(vpn(rng)),
    }
}

#[test]
fn page_table_matches_hashmap() {
    for case in 0..64u64 {
        let seed = SEED + case;
        let mut rng = SimRng::seed_from_u64(seed);
        let ops: Vec<TableOp> = (0..1 + rng.below(199))
            .map(|_| random_table_op(&mut rng))
            .collect();

        let mut table = PageTable::new(55);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                TableOp::Map(vpn, tag) => {
                    let old = table.map(vpn, pte(tag));
                    assert_eq!(
                        old.map(|p| match p.backing {
                            Backing::Frame(f) => f,
                            _ => u64::MAX,
                        }),
                        model.insert(vpn, tag),
                        "seed {seed}: map {vpn} returned wrong prior"
                    );
                }
                TableOp::Unmap(vpn) => {
                    let old = table.unmap(vpn);
                    assert_eq!(
                        old.is_some(),
                        model.remove(&vpn).is_some(),
                        "seed {seed}: unmap {vpn} presence"
                    );
                }
                TableOp::Get(vpn) => {
                    let got = table.get(vpn);
                    match model.get(&vpn) {
                        Some(&tag) => {
                            let p = got.expect("model says mapped");
                            assert_eq!(
                                p.backing,
                                Backing::Frame(tag),
                                "seed {seed}: get {vpn} backing"
                            );
                        }
                        None => assert!(got.is_none(), "seed {seed}: get of unmapped {vpn}"),
                    }
                }
            }
            assert_eq!(
                table.mapped_count() as usize,
                model.len(),
                "seed {seed}: mapped count"
            );
        }
    }
}

#[test]
fn flash_protocol_is_enforced() {
    for case in 0..64u64 {
        let seed = SEED + 1_000 + case;
        let mut rng = SimRng::seed_from_u64(seed);
        let ops: Vec<(u64, bool)> = (0..1 + rng.below(99))
            .map(|_| (rng.below(16), rng.chance(0.5)))
            .collect();

        // Model: per 512-byte slot, is it programmed? Flash: 2 blocks of
        // 4 KB = 16 slots.
        let spec = FlashSpec {
            banks: 1,
            blocks_per_bank: 2,
            block_bytes: 4096,
            write_unit: 512,
            ..FlashSpec::default()
        };
        let mut flash = Flash::new(spec, Clock::shared());
        let mut programmed = [false; 16];
        for (slot, do_program) in ops {
            if do_program {
                let addr = slot * 512;
                let result = flash.program(addr, &[slot as u8; 512]);
                if programmed[slot as usize] {
                    assert!(
                        matches!(result, Err(DeviceError::ProgramToUnerased { .. })),
                        "seed {seed}: double program must fail"
                    );
                } else {
                    assert!(result.is_ok(), "seed {seed}: program of erased slot failed");
                    programmed[slot as usize] = true;
                }
            } else {
                // Erase the block containing the slot.
                let block = (slot / 8) as u32;
                flash.erase(BlockId(block)).expect("erase within endurance");
                for slot_state in programmed.iter_mut().skip(block as usize * 8).take(8) {
                    *slot_state = false;
                }
            }
            // Device agrees with the model on erased state, and data of
            // programmed slots reads back.
            for s in 0..16u64 {
                assert_eq!(
                    flash.is_erased(s * 512, 512),
                    !programmed[s as usize],
                    "seed {seed}: slot {s} erased-state mismatch"
                );
                if programmed[s as usize] {
                    let mut buf = [0u8; 512];
                    flash.read(s * 512, &mut buf).expect("read");
                    assert!(
                        buf.iter().all(|&b| b == s as u8),
                        "seed {seed}: slot {s} data diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn online_stats_match_naive_computation() {
    for case in 0..64u64 {
        let seed = SEED + 2_000 + case;
        let mut rng = SimRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..1 + rng.below(199))
            .map(|_| -1e6 + 2e6 * rng.f64())
            .collect();

        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!(
            (s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()),
            "seed {seed}: mean {} vs naive {mean}",
            s.mean()
        );
        assert!(
            (s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()),
            "seed {seed}: variance {} vs naive {var}",
            s.variance()
        );
        assert_eq!(
            s.min(),
            xs.iter().copied().fold(f64::INFINITY, f64::min),
            "seed {seed}: min"
        );
        assert_eq!(
            s.max(),
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            "seed {seed}: max"
        );
    }
}

#[test]
fn stats_merge_is_order_independent() {
    for case in 0..64u64 {
        let seed = SEED + 3_000 + case;
        let mut rng = SimRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..1 + rng.below(59))
            .map(|_| -1e5 + 2e5 * rng.f64())
            .collect();
        let b: Vec<f64> = (0..1 + rng.below(59))
            .map(|_| -1e5 + 2e5 * rng.f64())
            .collect();

        let mut s_ab = OnlineStats::new();
        for &x in a.iter().chain(&b) {
            s_ab.record(x);
        }
        let mut s_a = OnlineStats::new();
        let mut s_b = OnlineStats::new();
        for &x in &a {
            s_a.record(x);
        }
        for &x in &b {
            s_b.record(x);
        }
        s_a.merge(&s_b);
        assert_eq!(s_a.count(), s_ab.count(), "seed {seed}: count");
        assert!(
            (s_a.mean() - s_ab.mean()).abs() < 1e-6 * (1.0 + s_ab.mean().abs()),
            "seed {seed}: merged mean diverged"
        );
        assert!(
            (s_a.variance() - s_ab.variance()).abs() < 1e-4 * (1.0 + s_ab.variance()),
            "seed {seed}: merged variance diverged"
        );
    }
}

#[test]
fn histogram_quantiles_are_ordered_and_bounded() {
    for case in 0..64u64 {
        let seed = SEED + 4_000 + case;
        let mut rng = SimRng::seed_from_u64(seed);
        let xs: Vec<u64> = (0..1 + rng.below(299))
            .map(|_| rng.below(1_000_000))
            .collect();

        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(
            q25 <= q50 && q50 <= q99,
            "seed {seed}: quantiles out of order"
        );
        let max = *xs.iter().max().expect("non-empty");
        // Log-bucketed estimate never exceeds twice the true maximum.
        assert!(
            q99 <= max.max(1) * 2,
            "seed {seed}: q99 {q99} vs max {max}"
        );
        assert_eq!(h.count(), xs.len() as u64, "seed {seed}: count");
    }
}
