//! Property-based tests of core data structures against trivial models:
//! the VM page table vs a `HashMap`, the flash device's erase/program
//! protocol, and the statistics toolkit's numeric invariants.

use proptest::prelude::*;
use ssmc::device::{BlockId, DeviceError, Flash, FlashSpec};
use ssmc::sim::{Clock, Histogram, OnlineStats};
use ssmc::vm::{Backing, PageTable, Pte};
use std::collections::HashMap;

fn pte(tag: u64) -> Pte {
    Pte {
        writable: tag.is_multiple_of(2),
        cow: tag.is_multiple_of(3),
        dirty: false,
        backing: Backing::Frame(tag),
    }
}

#[derive(Debug, Clone)]
enum TableOp {
    Map(u64, u64),
    Unmap(u64),
    Get(u64),
}

fn table_op() -> impl Strategy<Value = TableOp> {
    // Mix of nearby and far-flung VPNs exercises all radix levels.
    let vpn = prop_oneof![0..64u64, (0..1u64 << 50).prop_map(|v| v | 1 << 40)];
    prop_oneof![
        3 => (vpn.clone(), any::<u64>()).prop_map(|(v, t)| TableOp::Map(v, t)),
        1 => vpn.clone().prop_map(TableOp::Unmap),
        2 => vpn.prop_map(TableOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn page_table_matches_hashmap(ops in proptest::collection::vec(table_op(), 1..200)) {
        let mut table = PageTable::new(55);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                TableOp::Map(vpn, tag) => {
                    let old = table.map(vpn, pte(tag));
                    prop_assert_eq!(
                        old.map(|p| match p.backing { Backing::Frame(f) => f, _ => u64::MAX }),
                        model.insert(vpn, tag)
                    );
                }
                TableOp::Unmap(vpn) => {
                    let old = table.unmap(vpn);
                    prop_assert_eq!(old.is_some(), model.remove(&vpn).is_some());
                }
                TableOp::Get(vpn) => {
                    let got = table.get(vpn);
                    match model.get(&vpn) {
                        Some(&tag) => {
                            let p = got.expect("model says mapped");
                            prop_assert_eq!(p.backing, Backing::Frame(tag));
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
            }
            prop_assert_eq!(table.mapped_count() as usize, model.len());
        }
    }

    #[test]
    fn flash_protocol_is_enforced(
        ops in proptest::collection::vec((0..16u64, any::<bool>()), 1..100)
    ) {
        // Model: per 512-byte slot, is it programmed? Flash: 2 blocks of
        // 4 KB = 16 slots.
        let spec = FlashSpec {
            banks: 1,
            blocks_per_bank: 2,
            block_bytes: 4096,
            write_unit: 512,
            ..FlashSpec::default()
        };
        let mut flash = Flash::new(spec, Clock::shared());
        let mut programmed = [false; 16];
        for (slot, do_program) in ops {
            if do_program {
                let addr = slot * 512;
                let result = flash.program(addr, &[slot as u8; 512]);
                if programmed[slot as usize] {
                    prop_assert!(
                        matches!(result, Err(DeviceError::ProgramToUnerased { .. })),
                        "double program must fail"
                    );
                } else {
                    prop_assert!(result.is_ok(), "program of erased slot failed");
                    programmed[slot as usize] = true;
                }
            } else {
                // Erase the block containing the slot.
                let block = (slot / 8) as u32;
                flash.erase(BlockId(block)).expect("erase within endurance");
                for slot_state in programmed
                    .iter_mut()
                    .skip(block as usize * 8)
                    .take(8)
                {
                    *slot_state = false;
                }
            }
            // Device agrees with the model on erased state, and data of
            // programmed slots reads back.
            for s in 0..16u64 {
                prop_assert_eq!(
                    flash.is_erased(s * 512, 512),
                    !programmed[s as usize],
                    "slot {} erased-state mismatch", s
                );
                if programmed[s as usize] {
                    let mut buf = [0u8; 512];
                    flash.read(s * 512, &mut buf).expect("read");
                    prop_assert!(buf.iter().all(|&b| b == s as u8));
                }
            }
        }
    }

    #[test]
    fn online_stats_match_naive_computation(xs in proptest::collection::vec(-1e6..1e6f64, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn stats_merge_is_order_independent(
        a in proptest::collection::vec(-1e5..1e5f64, 1..60),
        b in proptest::collection::vec(-1e5..1e5f64, 1..60),
    ) {
        let mut s_ab = OnlineStats::new();
        for &x in a.iter().chain(&b) {
            s_ab.record(x);
        }
        let mut s_a = OnlineStats::new();
        let mut s_b = OnlineStats::new();
        for &x in &a { s_a.record(x); }
        for &x in &b { s_b.record(x); }
        s_a.merge(&s_b);
        prop_assert_eq!(s_a.count(), s_ab.count());
        prop_assert!((s_a.mean() - s_ab.mean()).abs() < 1e-6 * (1.0 + s_ab.mean().abs()));
        prop_assert!((s_a.variance() - s_ab.variance()).abs() < 1e-4 * (1.0 + s_ab.variance()));
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded(
        xs in proptest::collection::vec(0..1_000_000u64, 1..300)
    ) {
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        prop_assert!(q25 <= q50 && q50 <= q99, "quantiles out of order");
        let max = *xs.iter().max().expect("non-empty");
        // Log-bucketed estimate never exceeds twice the true maximum.
        prop_assert!(q99 <= max.max(1) * 2, "q99 {} vs max {}", q99, max);
        prop_assert_eq!(h.count(), xs.len() as u64);
    }
}
