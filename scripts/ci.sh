#!/usr/bin/env sh
# Offline CI gate: the workspace must build, test, and regenerate a
# representative experiment with no registry access and no external
# crates. Run from the repository root.
set -eu

cargo build --release --offline
cargo test -q --offline
cargo run --release --offline -p ssmc-bench --bin experiments -- f2
