#!/usr/bin/env sh
# Offline CI gate: the workspace must build, test, and regenerate a
# representative experiment with no registry access and no external
# crates. Run from the repository root.
set -eu

cargo build --release --offline
cargo test -q --offline
cargo run --release --offline -p ssmc-bench --bin experiments -- f2

# Bench smoke: the macrobenchmark harness must run end to end (short
# windows, no baselines asserted) — with the no-op recorder, so this is
# also the disabled-cost path of the observability layer.
cargo bench -p ssmc-bench --bench simulator --offline -- --smoke

# Observability smoke: a traced replay must produce a decodable artifact
# and trace-dump must render it. Uses a temp path — trace artifacts
# never land in results/.
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
cargo run --release --offline -p ssmc-bench --bin experiments -- \
    --trace-out "$TRACE_TMP/trace.json" --trace-ops 2000
cargo run --release --offline -p ssmc-bench --bin trace-dump -- \
    "$TRACE_TMP/trace.json"

# Behaviour guard: regenerating every experiment must leave results/
# untouched — refactors of the hot path may not move a single byte of
# simulated output.
cargo run --release --offline -p ssmc-bench --bin experiments -- --json results all
git diff --exit-code results/
