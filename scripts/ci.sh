#!/usr/bin/env sh
# Offline CI gate: the workspace must build, test, and regenerate a
# representative experiment with no registry access and no external
# crates. Run from the repository root.
set -eu

cargo build --release --offline
cargo test -q --offline
cargo run --release --offline -p ssmc-bench --bin experiments -- f2

# Bench smoke: the macrobenchmark harness must run end to end (short
# windows, no baselines asserted).
cargo bench -p ssmc-bench --bench simulator --offline -- --smoke

# Behaviour guard: regenerating every experiment must leave results/
# untouched — refactors of the hot path may not move a single byte of
# simulated output.
cargo run --release --offline -p ssmc-bench --bin experiments -- --json results all
git diff --exit-code results/
