#!/usr/bin/env sh
# Offline CI gate: the workspace must build, test, and regenerate a
# representative experiment with no registry access and no external
# crates. Run from the repository root.
set -eu

# One warnings-as-errors build: the tree must be warning-clean, not
# just compile.
RUSTFLAGS="-D warnings" cargo build --release --offline
cargo test -q --offline --workspace

# Invariant linter: per-file rules plus the interprocedural passes —
# workspace call graph, transitive hot-path allocation (H2), panic
# reachability (P1), unit-suffix consistency (U2), and energy
# attribution (E1) — against the checked-in lint-baseline.json (see
# DESIGN.md §8). Baseline staleness in either direction is a B1
# diagnostic, so this step fails the moment the tree drifts from the
# recorded findings. The linter is part of the edit loop, so its
# runtime is budgeted: a full workspace pass must finish inside 5
# seconds (including cargo dispatch overhead).
LINT_START=$(date +%s%N)
cargo run --release --offline -p ssmc-lint -- --workspace
LINT_END=$(date +%s%N)
LINT_MS=$(( (LINT_END - LINT_START) / 1000000 ))
if [ "$LINT_MS" -gt 5000 ]; then
    echo "ssmc-lint workspace pass took ${LINT_MS}ms (budget 5000ms)" >&2
    exit 1
fi
cargo test -q --offline -p ssmc-lint

cargo run --release --offline -p ssmc-bench --bin experiments -- f2

# Bench smoke: the macrobenchmark harness must run end to end (short
# windows, no baselines asserted) — with the no-op recorder, so this is
# also the disabled-cost path of the observability layer.
cargo bench -p ssmc-bench --bench simulator --offline -- --smoke

# Allocation sentinel: a steady-state replay window must perform zero
# heap allocations per op (the dynamic half of the lint's H1 rule),
# and a full million-op compiled stream must replay from disk with flat
# memory — the streaming half decodes 1M records and asserts zero
# allocation events past the warmup window. Both windows now run with
# the timeline sampler live (and assert rows were taken inside the
# window), so this is also the sampler's zero-allocation proof. Full
# mode on purpose: the guard workload coalesces heavily, so even the
# 1M stream takes only a few seconds.
cargo bench -p ssmc-bench --bench simulator --offline -- --alloc-guard

# Throughput regression gate: re-measure every workload against the
# checked-in BENCH_throughput.json and fail any row more than 15% below
# its host-normalized floor (recorded value scaled by the run-wide
# median measured/recorded ratio, so the sag this script itself induces
# — the machine is 15-25% slower here than at rest — cancels out), or
# if the workload sets diverge in either direction. Absolute path:
# cargo runs the bench with CWD at the package root, not the workspace
# root.
cargo bench -p ssmc-bench --bench simulator --offline -- --check "$PWD/BENCH_throughput.json"

# Namespace scale proof: million-entry directory with O(log n) depth
# asserted structurally, flat memory under churn, and a 10-level-deep
# tree. Ignored by default (release-only by design — a debug million-file
# loop is pointlessly slow).
cargo test --release --offline --test scale_namespace -- --ignored

# Observability smoke: a traced replay must produce a decodable artifact
# and trace-dump must render it. Uses a temp path — trace artifacts
# never land in results/.
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
cargo run --release --offline -p ssmc-bench --bin experiments -- \
    --trace-out "$TRACE_TMP/trace.json" --trace-ops 2000
cargo run --release --offline -p ssmc-bench --bin trace-dump -- \
    "$TRACE_TMP/trace.json"

# Timeline determinism + drift gate: regenerating the fixed-seed F2
# timeline must reproduce the checked-in golden byte for byte (the
# time-resolved analog of the results/ guard below), obs-diff must
# report it clean (exit 0), and a run with an injected regression (a
# shorter trace, so every cumulative metric lands low) must make
# obs-diff exit non-zero. timeline-dump must render the artifact.
cargo run --release --offline -p ssmc-bench --bin experiments -- \
    --timeline-out "$TRACE_TMP/f2.tl" --trace-ops 2000 --sample-interval 1000
cmp "$TRACE_TMP/f2.tl" goldens/f2_timeline.tl
cargo run --release --offline -p ssmc-bench --bin obs-diff -- \
    "$TRACE_TMP/f2.tl" goldens/f2_timeline.tl
cargo run --release --offline -p ssmc-bench --bin experiments -- \
    --timeline-out "$TRACE_TMP/f2_short.tl" --trace-ops 1500 --sample-interval 1000
if cargo run --release --offline -p ssmc-bench --bin obs-diff -- \
    "$TRACE_TMP/f2_short.tl" goldens/f2_timeline.tl >/dev/null 2>&1; then
    echo "obs-diff failed to flag an injected regression" >&2
    exit 1
fi
cargo run --release --offline -p ssmc-bench --bin timeline-dump -- \
    "$TRACE_TMP/f2.tl" >/dev/null

# Crash-torture smoke: power-cut injection at every flash program/erase
# boundary of a 2k-op BSD window, both torn-write modes, recovery
# differentially checked against the durability model. Exhaustive by
# design (~20k cut+recover cycles, a few minutes at 4 threads); any
# violation exits non-zero with the offending cut index printed.
cargo run --release --offline -p ssmc-bench --bin experiments -- \
    crash-torture --ops 2000 --tear both --threads 4
# Sharding determinism: the same sweep, restricted to a small window,
# must emit byte-identical JSON at 1 and 4 threads.
cargo run --release --offline -p ssmc-bench --bin experiments -- \
    crash-torture --ops 300 --tear both --threads 1 --json "$TRACE_TMP/tort1.json"
cargo run --release --offline -p ssmc-bench --bin experiments -- \
    crash-torture --ops 300 --tear both --threads 4 --json "$TRACE_TMP/tort4.json"
cmp "$TRACE_TMP/tort1.json" "$TRACE_TMP/tort4.json"
# Injected-bug canary: with the feature-gated recovery fault compiled in
# (torn slots pass CRC validation), the same harness must *catch* it —
# a clean exit here means the sweep has gone blind.
if cargo run --release --offline -p ssmc-bench --features fault-canary \
    --bin experiments -- crash-torture --ops 300 --tear both --threads 4 \
    >/dev/null 2>&1; then
    echo "crash-torture failed to flag the injected recovery fault" >&2
    exit 1
fi

# Behaviour guard: regenerating every experiment must leave results/
# untouched — refactors of the hot path may not move a single byte of
# simulated output.
cargo run --release --offline -p ssmc-bench --bin experiments -- --json results all
git diff --exit-code results/
