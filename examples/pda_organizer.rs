//! A personal digital assistant running an organizer workload.
//!
//! The paper's motivating device class: "Small personal information
//! managers like the Sharp Wizard and the Casio Boss" and "new personal
//! digital assistants such as the Apple Newton MessagePad". This example
//! builds the PDA preset (1 MB DRAM, 4 MB flash), replays a calibrated
//! organizer workload (frequent sub-kilobyte record updates), and prints
//! the user-visible latency plus the battery story.
//!
//! ```text
//! cargo run --release --example pda_organizer
//! ```

use ssmc::core::{run_trace, MachineConfig, MobileComputer};
use ssmc::trace::{GeneratorConfig, OpKind, TraceAnalysis, Workload};

fn main() {
    let mut machine = MobileComputer::new(MachineConfig::pda());
    let trace = GeneratorConfig::new(Workload::Office)
        .with_ops(20_000)
        .with_max_live_bytes(1 << 20)
        .with_seed(1993)
        .generate();
    let stats = trace.stats();
    println!(
        "organizer day: {} ops over {} ({} records updated, {} lookups)",
        stats.total_ops(),
        trace.span(),
        stats.writes,
        stats.reads
    );
    println!("{}\n", TraceAnalysis::of(&trace));

    let report = run_trace(&mut machine, &trace);
    assert_eq!(report.replay.errors, 0, "PDA must absorb the whole day");

    println!("\nuser-visible latency:");
    for kind in [OpKind::Write, OpKind::Read, OpKind::Create, OpKind::Delete] {
        println!(
            "  {:8} mean {:>10}  p99 {:>10}",
            kind.to_string(),
            report.replay.mean_latency(kind).to_string(),
            report.replay.p99_latency(kind).to_string(),
        );
    }
    println!(
        "\nflash protected: {:.0}% of record updates never left DRAM",
        report.write_reduction * 100.0
    );
    println!(
        "write amplification {:.2}; worst flash block at {} erases (evenness {:.2})",
        report.write_amplification,
        report.wear.max_erases,
        report.wear.evenness()
    );
    if let Some(years) = report.lifetime_years {
        println!("projected flash life at this pace: {years:.1} years");
    }
    println!(
        "energy for the day: {:.2} J; battery remaining {:.0} J",
        report.energy_joules, report.battery_remaining_joules
    );
}
