//! Battery-failure drill: how much work does a dead battery cost?
//!
//! §3.1 argues battery-backed DRAM is stable *enough* given gradual
//! discharge, backup cells, and "appropriate care" in the storage
//! manager. This example runs a workload, kills both battery stages at a
//! random moment, recovers, and audits exactly what was lost under three
//! write-back delays.
//!
//! ```text
//! cargo run --release --example battery_failure
//! ```

use ssmc::core::{MachineConfig, MobileComputer};
use ssmc::sim::SimDuration;
use ssmc::trace::{replay, GeneratorConfig, Workload};

fn drill(age_limit_secs: u64) {
    let mut cfg = MachineConfig::small_notebook();
    cfg.storage.flush.age_limit = SimDuration::from_secs(age_limit_secs);
    let mut machine = MobileComputer::new(cfg);

    let trace = GeneratorConfig::new(Workload::Bsd)
        .with_ops(8_000)
        .with_max_live_bytes(2 << 20)
        .with_seed(7)
        .generate();
    let clock = machine.clock().clone();
    let report = replay(&trace, &mut machine, &clock);
    assert_eq!(report.errors, 0);

    let dirty = machine.fs().storage().metrics().buffer_occupancy.level();
    machine.battery_failure();
    let (rec, fsck) = machine.replace_battery_and_recover().expect("recover");
    println!(
        "flush delay {:>4}s | {:>4} dirty pages at crash | lost {:>3} | reverted {:>3} | \
         resurrected {:>2} | fsck dropped {:>2} entries | recovery {}",
        age_limit_secs,
        dirty as u64,
        rec.lost_pages,
        rec.reverted_pages,
        rec.resurrected_pages,
        fsck.dangling_entries,
        rec.duration
    );

    // The tree is consistent whatever was lost.
    let entries = machine.fs().list_dir("/").expect("list");
    for e in entries {
        machine
            .fs()
            .stat(&format!("/{}", e.name))
            .expect("every surviving entry resolves");
    }
}

fn main() {
    println!("total battery failure mid-workload, by write-back delay:\n");
    for age in [5, 30, 120] {
        drill(age);
    }
    println!(
        "\nshorter delays expose less data but send more traffic to flash — \
         the §3.1/§3.3 trade the paper asks the storage manager to balance."
    );
}
