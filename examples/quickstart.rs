//! Quickstart: the smallest useful tour of the public API.
//!
//! Builds a small 1993 notebook (battery-backed DRAM + flash, no disk),
//! does ordinary file work, survives a battery failure, and prints what
//! the storage manager did behind the scenes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ssmc::core::{MachineConfig, MobileComputer};
use ssmc::memfs::OpenMode;

fn main() {
    // 4 MB battery-backed DRAM, 20 MB flash, no disk.
    let mut machine = MobileComputer::new(MachineConfig::small_notebook());

    // Ordinary file work: everything lands in the DRAM write buffer first.
    let fd = machine.fs_create("/notes.txt").expect("create");
    machine
        .fs_write(fd, 0, b"flash is the new disk")
        .expect("write");
    machine.fs().mkdir("/mail").expect("mkdir");
    let draft = machine.fs().create("/mail/draft").expect("create");
    machine
        .fs()
        .write(draft, 0, &vec![b'x'; 8 * 1024])
        .expect("write");

    // Make it durable, then lose the battery entirely.
    machine.fs_sync().expect("sync");
    machine
        .fs_write(fd, 21, b" (unsynced tail)")
        .expect("write after sync");
    println!("battery dies...");
    machine.battery_failure();

    let (recovery, fsck) = machine
        .replace_battery_and_recover()
        .expect("swap battery and recover");
    println!(
        "recovered {} pages in {}; lost {}, reverted {}, fsck dropped {} entries",
        recovery.recovered_pages,
        recovery.duration,
        recovery.lost_pages,
        recovery.reverted_pages,
        fsck.dangling_entries
    );

    // The synced data survived; the unsynced tail reverted.
    let fd = machine
        .fs()
        .open("/notes.txt", OpenMode::Read)
        .expect("reopen");
    let mut buf = vec![0u8; 64];
    let n = machine.fs_read(fd, 0, &mut buf).expect("read");
    println!(
        "notes.txt after recovery: {:?}",
        String::from_utf8_lossy(&buf[..n])
    );
    assert!(buf[..n].starts_with(b"flash is the new disk"));

    // What the paper's storage manager did for us.
    let m = machine.fs().storage().metrics();
    println!(
        "writes: {} requested, {} reached flash ({}% absorbed in DRAM)",
        m.pages_written,
        m.user_flash_pages,
        (m.write_traffic_reduction() * 100.0).round()
    );
    let wear = machine.fs().storage().flash().wear_stats();
    println!(
        "flash wear: {} erases total, worst block {} (evenness {:.2})",
        wear.total_erases,
        wear.max_erases,
        wear.evenness()
    );
    println!(
        "energy so far: {:.3} J; battery remaining: {:.0} J",
        machine.total_energy().as_joules(),
        machine.battery().remaining().as_joules()
    );
}
