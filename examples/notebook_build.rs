//! A solid-state notebook running a software-development session.
//!
//! Two of the paper's claims in one scenario: the DRAM write buffer
//! absorbs the compiler's short-lived object files (§3.3), and the editor
//! executes in place from flash with no load-time copy (§3.2, the
//! OmniBook's trick).
//!
//! ```text
//! cargo run --release --example notebook_build
//! ```

use ssmc::core::{run_trace, MachineConfig, MobileComputer};
use ssmc::trace::{GeneratorConfig, Workload};

fn main() {
    let mut machine = MobileComputer::new(MachineConfig::small_notebook());

    // Install a 1 MB editor binary in flash.
    machine.fs().mkdir("/bin").expect("mkdir");
    let fd = machine.fs().create("/bin/editor").expect("create");
    machine
        .fs()
        .write(fd, 0, &vec![0xC3u8; 1 << 20])
        .expect("install");
    machine.fs().close(fd).expect("close");
    machine.fs_sync().expect("sync");

    // Launch it both ways.
    let xip = machine.launch_app("/bin/editor", true).expect("xip launch");
    let loaded = machine
        .launch_app("/bin/editor", false)
        .expect("conventional launch");
    println!("editor launch (1 MB binary):");
    println!(
        "  execute-in-place: {:>10}, {} DRAM pages",
        xip.latency.to_string(),
        xip.dram_pages
    );
    println!(
        "  demand-loaded:    {:>10}, {} DRAM pages",
        loaded.latency.to_string(),
        loaded.dram_pages
    );
    let run_xip = machine.run_app(&xip, 1 << 20, 5_000).expect("run");
    let run_load = machine.run_app(&loaded, 1 << 20, 5_000).expect("run");
    println!(
        "  5000 fetches: in-place {} vs loaded {} — \"without loss of performance\"",
        run_xip, run_load
    );

    // Now a compile session: many short-lived object files.
    let trace = GeneratorConfig::new(Workload::SoftwareDev)
        .with_ops(15_000)
        .with_max_live_bytes(4 << 20)
        .with_seed(42)
        .generate();
    let report = run_trace(&mut machine, &trace);
    assert_eq!(report.replay.errors, 0);
    let m = machine.fs().storage().metrics();
    println!("\ncompile session ({} ops):", trace.len());
    println!(
        "  {} of {} page writes died in DRAM ({:.0}% flash traffic avoided)",
        m.overwrites_absorbed + m.deaths_absorbed,
        m.pages_written,
        report.write_reduction * 100.0
    );
    println!(
        "  mean write latency {}; flash wear evenness {:.2}",
        report.replay.mean_latency(ssmc::trace::OpKind::Write),
        report.wear.evenness()
    );
    println!("  energy: {:.2} J", report.energy_joules);
}
