//! Sizing advisor: §4's question answered for your budget and workload.
//!
//! "How should a system apportion its storage capacity between the two
//! technologies? Should the ratio between DRAM and flash memory
//! capacities be 1:1, or something else? The answer depends on the
//! workload."
//!
//! ```text
//! cargo run --release --example sizing_advisor -- 1000 office
//! cargo run --release --example sizing_advisor -- 1500 database
//! ```

use ssmc::core::{sweep_sizing, MachineConfig, SizingSpec};
use ssmc::trace::{GeneratorConfig, Workload};

fn main() {
    let mut args = std::env::args().skip(1);
    let budget: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1_000.0);
    let workload = match args.next().as_deref() {
        Some("office") | None => Workload::Office,
        Some("bsd") => Workload::Bsd,
        Some("dev") | Some("software-dev") => Workload::SoftwareDev,
        Some("database") | Some("db") => Workload::Database,
        Some(other) => {
            eprintln!("unknown workload {other}; use office|bsd|dev|database");
            std::process::exit(2);
        }
    };

    println!("sizing a ${budget:.0} machine for the {workload} workload (1993 prices)...\n");
    let trace = GeneratorConfig::new(workload)
        .with_ops(8_000)
        .with_max_live_bytes(3 << 20)
        .generate();
    let spec = SizingSpec {
        budget_dollars: budget,
        dram_fractions: vec![0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9],
        base: MachineConfig::small_notebook(),
        ..SizingSpec::default()
    };
    let points = sweep_sizing(&spec, &trace);

    println!(
        "{:>10} {:>9} {:>10} {:>9} {:>14} {:>10}",
        "DRAM share", "DRAM MB", "flash MB", "feasible", "mean op (us)", "energy (J)"
    );
    for p in &points {
        println!(
            "{:>10.0}% {:>9.1} {:>10.1} {:>9} {:>14.0} {:>10.1}",
            p.dram_fraction * 100.0,
            p.dram_mb,
            p.flash_mb,
            if p.feasible { "yes" } else { "NO" },
            p.mean_latency_us,
            p.energy_joules
        );
    }

    let best = points.iter().filter(|p| p.feasible).min_by(|a, b| {
        a.mean_latency_us
            .partial_cmp(&b.mean_latency_us)
            .expect("finite")
    });
    match best {
        Some(p) => println!(
            "\nrecommendation: {:.1} MB DRAM + {:.1} MB flash \
             (DRAM:flash ≈ 1:{:.1}) — {:.1} ms mean op",
            p.dram_mb,
            p.flash_mb,
            p.flash_mb / p.dram_mb.max(0.01),
            p.mean_latency_us / 1_000.0
        ),
        None => println!("\nno feasible split: the workload needs a bigger budget"),
    }
}
